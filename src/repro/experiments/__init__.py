"""Experiment drivers (E1-E11, E14), one module per paper artifact or claim.

Every module exposes a ``run_*`` function returning a result dataclass
with a ``format_table()`` method printing the rows the paper reports (or
the quantified version of a qualitative claim).  The ``benchmarks/``
directory wraps these with pytest-benchmark; the ``examples/`` scripts
call them directly.  See DESIGN.md for the experiment index.
"""

from repro.experiments.common import (
    ScenarioResult,
    default_energy_model,
    make_grid_scenario,
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.experiments.fig2_hops import run_fig2
from repro.experiments.table1_mlr import run_table1
from repro.experiments.architecture import run_architecture
from repro.experiments.scalability import run_scalability
from repro.experiments.lifetime import run_lifetime_comparison
from repro.experiments.gateway_count import run_gateway_count
from repro.experiments.security_overhead import run_security_overhead
from repro.experiments.attack_matrix import run_attack_matrix, ATTACK_NAMES
from repro.experiments.robustness import run_robustness
from repro.experiments.mobility_overhead import run_mobility_overhead
from repro.experiments.lp_bound import run_lp_bound
from repro.experiments.chaos import run_chaos
from repro.experiments.registry import (
    REGISTRY,
    ExperimentAdapter,
    ExperimentResult,
    get_experiment,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "ExperimentAdapter",
    "ExperimentResult",
    "get_experiment",
    "run_experiment",
    "ScenarioResult",
    "default_energy_model",
    "make_grid_scenario",
    "make_uniform_scenario",
    "run_collection_rounds",
    "run_fig2",
    "run_table1",
    "run_architecture",
    "run_scalability",
    "run_lifetime_comparison",
    "run_gateway_count",
    "run_security_overhead",
    "run_attack_matrix",
    "ATTACK_NAMES",
    "run_robustness",
    "run_mobility_overhead",
    "run_lp_bound",
    "run_chaos",
]
