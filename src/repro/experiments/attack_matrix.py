"""E8 — the attack-resistance matrix: MLR vs SecMLR under nine attacks.

Quantifies the Section 6 claim that SecMLR "can resist most of attacks
against routing in WMSNs".  Every attack from the Karlof–Wagner
catalogue quoted in Section 2.3 runs twice — against unsecured MLR and
against SecMLR — on the same deployment, traffic and attacker placement.

Measured per cell:

* ``delivery`` — honest-data delivery ratio (availability impact);
* ``dups`` — duplicate data accepted by gateways (replay success);
* ``forged`` — fabricated/impersonated data accepted (authenticity);
* ``rejected`` — packets SecMLR's checks discarded (defence activity).

Expected shape: MLR collapses (or silently accepts forgeries) under
sinkhole/spoof/replay/alteration/HELLO-flood; SecMLR holds its no-attack
delivery ratio for those, and degrades gracefully only under brute-force
packet dropping (selective forwarding / blackhole / wormhole), which no
MAC can prevent — only re-routing mitigates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.core.mlr import MLR
from repro.core.secmlr import SecMLR
from repro.experiments.common import (
    corner_places,
    make_uniform_scenario,
)
from repro.security.attacks import (
    AlterationAttacker,
    Blackhole,
    HelloFloodAttacker,
    ReplayAttacker,
    SelectiveForwarder,
    SinkholeAttacker,
    SpoofAttacker,
    SybilAttacker,
    WormholeEndpoint,
    WormholeTunnel,
    compromise,
)
from repro.sim.mobility import GatewaySchedule
from repro.sim.serialize import serializable
from repro.world import WorldConfig

__all__ = ["AttackCell", "AttackMatrixResult", "run_attack_matrix", "ATTACK_NAMES"]

ATTACK_NAMES = (
    "none",
    "selective",
    "blackhole",
    "sinkhole",
    "replay",
    "spoof",
    "alteration",
    "hello_flood",
    "sybil",
    "wormhole",
)


@serializable
@dataclass(frozen=True)
class AttackCell:
    attack: str
    protocol: str
    delivery_ratio: float
    duplicates: int
    forged_accepted: int
    rejected: int
    attacker_stats: dict
    #: Terminal drop reasons from the conservation ledger — what the
    #: attack actually did to the honest datums that went missing.
    drops: dict = field(default_factory=dict)


@serializable
@dataclass(frozen=True)
class AttackMatrixResult:
    cells: list

    def cell(self, attack: str, protocol: str) -> AttackCell:
        for c in self.cells:
            if c.attack == attack and c.protocol == protocol:
                return c
        raise KeyError((attack, protocol))

    def format_table(self) -> str:
        rows = []
        for attack in ATTACK_NAMES:
            row = [attack]
            for proto in ("MLR", "SecMLR"):
                try:
                    c = self.cell(attack, proto)
                except KeyError:
                    row += ["-", "-", "-", "-"]
                    continue
                row += [round(c.delivery_ratio, 3), c.duplicates, c.forged_accepted, c.rejected]
            rows.append(row)
        return format_table(
            ["attack",
             "MLR dlv", "MLR dup", "MLR forged", "MLR rej",
             "Sec dlv", "Sec dup", "Sec forged", "Sec rej"],
            rows,
            title="E8 — attack resistance, MLR vs SecMLR",
        )


def _chokepoints(network, count: int = 3) -> list[int]:
    """The sensors most traffic flows through (betweenness on the link graph).

    Dropping attacks only hurt when the compromised nodes actually carry
    traffic, so the adversary captures the highest-betweenness sensors of
    the round-0 topology.
    """
    import networkx as nx

    g = network.graph()
    bc = nx.betweenness_centrality(g, normalized=True)
    sensors = sorted(
        (s for s in network.sensor_ids if s in bc),
        key=lambda s: -bc[s],
    )
    return sensors[:count]


def _center_sensor(network) -> int:
    pos = network.positions
    center = pos[network.sensor_ids].mean(axis=0)
    return min(network.sensor_ids, key=lambda s: float(((pos[s] - center) ** 2).sum()))


def _lure_sensor(network, field_size: float) -> int:
    """A sensor *off* the natural routes (route-manipulation attackers).

    Placing a sinkhole on a node that already forwards most traffic
    conflates route luring with plain packet dropping; an off-path node
    isolates the luring effect — damage then only occurs if the forged
    routes are actually believed.
    """
    pos = network.positions
    target = (0.3 * field_size, 0.7 * field_size)
    return min(
        network.sensor_ids,
        key=lambda s: float(((pos[s] - target) ** 2).sum()),
    )


def _run_single(
    protocol_cls,
    attack: str,
    n_sensors: int,
    field_size: float,
    gateways: int,
    rounds: int,
    round_duration: float,
    comm_range: float,
    seed: int,
) -> AttackCell:
    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in places.labels[:gateways]]
    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 13,
        world=WorldConfig(audit=True),
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    schedule = GatewaySchedule.rotating(places, net.gateway_ids, num_rounds=rounds, seed=seed)
    protocol = protocol_cls(sim, net, ch, schedule)

    behaviors = []
    choke = _chokepoints(net)
    center = _center_sensor(net)
    lure = _lure_sensor(net, field_size)

    if attack == "selective":
        behaviors = [compromise(protocol, c, SelectiveForwarder(0.5)) for c in choke]
    elif attack == "blackhole":
        behaviors = [compromise(protocol, c, Blackhole()) for c in choke]
    elif attack == "sinkhole":
        behaviors = [compromise(protocol, lure, SinkholeAttacker())]
    elif attack == "replay":
        behaviors = [compromise(protocol, c, ReplayAttacker(delay=0.7)) for c in choke]
    elif attack == "alteration":
        behaviors = [compromise(protocol, center, AlterationAttacker())]
    elif attack == "sybil":
        behaviors = [compromise(protocol, center, SybilAttacker())]
    elif attack == "wormhole":
        tunnel = WormholeTunnel()
        ends = [choke[0], center if center != choke[0] else choke[-1]]
        behaviors = [compromise(protocol, e, WormholeEndpoint(tunnel)) for e in ends]
    elif attack == "spoof":
        behaviors = [compromise(protocol, center, SpoofAttacker())]
    elif attack == "hello_flood":
        behaviors = [compromise(protocol, center, HelloFloodAttacker())]

    honest = [s for s in net.sensor_ids if s not in {b.node_id for b in behaviors}]
    for r in range(rounds):
        sim.run(until=r * round_duration)
        protocol.start_round(r)
        if attack == "spoof":
            sim.schedule(2.2, behaviors[0].inject, honest[0], net.gateway_ids[0], 5)
        if attack == "hello_flood":
            # Claim gateway 0 moved to an unoccupied far place.
            occupied = set(schedule.assignment(r).values())
            free = [p for p in places.labels if p not in occupied]
            if free:
                sim.schedule(1.5, behaviors[0].flood, net.gateway_ids[0], free[0], 2)
        for i, s in enumerate(honest):
            sim.schedule(2.5 + (i % 61) * 1e-3, protocol.send_data, s)
    sim.run()

    m = ch.metrics
    ledger = m.ledger
    # Ledger-based slicing: honest datums are exactly the ledger entries
    # (only on_data_generated creates them); anything a gateway accepted
    # without a matching entry — forged ids, impersonations — lands in
    # unknown_delivered; replay success is the per-entry duplicate count.
    forged = sum(ledger.unknown_delivered.values())
    duplicates = ledger.duplicate_deliveries
    rejected = 0
    if isinstance(protocol, SecMLR):
        rejected = sum(protocol.security_rejections.values())
    delivery = ledger.delivered / ledger.generated if ledger.generated else 0.0
    stats = {}
    for b in behaviors:
        for k, v in getattr(b, "stats", {}).items():
            stats[k] = stats.get(k, 0) + v
        tunnel_stats = getattr(getattr(b, "tunnel", None), "stats", None)
        if tunnel_stats:
            stats.update(dict(tunnel_stats))
    scenario.assert_conserved()
    return AttackCell(
        attack=attack,
        protocol="SecMLR" if isinstance(protocol, SecMLR) else "MLR",
        delivery_ratio=delivery,
        duplicates=max(0, duplicates),
        forged_accepted=forged,
        rejected=rejected,
        attacker_stats=stats,
        drops=dict(sorted(ledger.drops_by_reason().items())),
    )


def run_attack_matrix(
    attacks: tuple[str, ...] = ATTACK_NAMES,
    protocols: tuple[str, ...] = ("MLR", "SecMLR"),
    n_sensors: int = 40,
    field_size: float = 180.0,
    gateways: int = 2,
    rounds: int = 4,
    round_duration: float = 6.0,
    comm_range: float = 50.0,
    seed: int = 4,
) -> AttackMatrixResult:
    """The full attack × protocol grid."""
    cells = []
    for attack in attacks:
        for proto in protocols:
            cls = MLR if proto == "MLR" else SecMLR
            cells.append(
                _run_single(
                    cls, attack, n_sensors, field_size, gateways,
                    rounds, round_duration, comm_range, seed,
                )
            )
    return AttackMatrixResult(cells=cells)
