"""E1 — exact reproduction of Fig. 2 (one sink vs three gateways).

The paper's worked example: sensor nodes S1..S4 reach a *single sink* in
2, 7, 6 and 9 hops respectively (Fig. 2a); deploying three gateways
instead, S1→G1, S2→G2, S3→G3 take 1 hop each and S4→G2 takes 2
(Fig. 2b).  We realise the example geometrically — three chains of relay
nodes radiating from the sink position — and let the *protocols* discover
the routes: FlatSinkRouting for 2(a), SPR for 2(b).  The measured hop
counts must equal the paper's exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.spr import SPR
from repro.sim.serialize import serializable
from repro.world import WorldBuilder

__all__ = ["Fig2Result", "run_fig2", "build_fig2_positions"]

#: hop counts the paper states for Fig. 2(a), keyed by sensor name
PAPER_SINGLE_SINK = {"S1": 2, "S2": 7, "S3": 6, "S4": 9}
#: hop counts (and serving gateway) for Fig. 2(b)
PAPER_MULTI_GATEWAY = {"S1": (1, "G1"), "S2": (1, "G2"), "S3": (1, "G3"), "S4": (2, "G2")}

_SPACING = 8.0
_COMM_RANGE = 10.0


def build_fig2_positions() -> dict:
    """The geometric embedding of Fig. 2.

    Three rays from the sink at 0°, 120° and 240°, relay nodes every 8 m
    (communication range 10 m, so only chain-adjacent nodes hear each
    other; rays are angularly separated enough never to short-circuit):

    * ray A: 1 relay, then S1 (2 hops), with G1 one hop past S1;
    * ray B: 6 relays, then S2 (7 hops), then a relay, then S4 (9 hops);
      G2 sits off-ray, adjacent to S2 and to the relay before S4;
    * ray C: 5 relays, then S3 (6 hops), with G3 one hop past S3.
    """

    def on_ray(angle_deg: float, radius: float, offset: float = 0.0) -> tuple[float, float]:
        a = math.radians(angle_deg)
        # perpendicular offset rotates the point off the ray axis
        return (
            radius * math.cos(a) - offset * math.sin(a),
            radius * math.sin(a) + offset * math.cos(a),
        )

    relays: list[tuple[float, float]] = []
    named: dict[str, tuple[float, float]] = {}

    # ray A (0 degrees): sink - r - S1 ; G1 beyond S1
    relays.append(on_ray(0, 1 * _SPACING))
    named["S1"] = on_ray(0, 2 * _SPACING)
    named["G1"] = on_ray(0, 3 * _SPACING)

    # ray B (120 degrees): sink - r1..r6 - S2 - r7 - S4 ; G2 off-ray
    for k in range(1, 7):
        relays.append(on_ray(120, k * _SPACING))
    named["S2"] = on_ray(120, 7 * _SPACING)
    relays.append(on_ray(120, 8 * _SPACING))  # the relay between S2 and S4
    named["S4"] = on_ray(120, 9 * _SPACING)
    # adjacent to S2 (7*8=56) and to the relay at 64, but not to S4 at 72
    named["G2"] = on_ray(120, 7.5 * _SPACING, offset=6.0)

    # ray C (240 degrees): sink - r1..r5 - S3 ; G3 beyond S3
    for k in range(1, 6):
        relays.append(on_ray(240, k * _SPACING))
    named["S3"] = on_ray(240, 6 * _SPACING)
    named["G3"] = on_ray(240, 7 * _SPACING)

    named["sink"] = (0.0, 0.0)
    return {"relays": relays, "named": named}


@serializable
@dataclass(frozen=True)
class Fig2Result:
    """Measured vs published hop counts for both panels of Fig. 2."""

    single_sink_hops: dict[str, int]
    multi_gateway_hops: dict[str, int]
    multi_gateway_served_by: dict[str, str]
    total_hops_single: int
    total_hops_multi: int

    @property
    def matches_paper(self) -> bool:
        if self.single_sink_hops != PAPER_SINGLE_SINK:
            return False
        for s, (hops, gw) in PAPER_MULTI_GATEWAY.items():
            if self.multi_gateway_hops.get(s) != hops:
                return False
            if self.multi_gateway_served_by.get(s) != gw:
                return False
        return True

    def format_table(self) -> str:
        rows = []
        for s in ("S1", "S2", "S3", "S4"):
            rows.append(
                [
                    s,
                    PAPER_SINGLE_SINK[s],
                    self.single_sink_hops[s],
                    PAPER_MULTI_GATEWAY[s][0],
                    self.multi_gateway_hops[s],
                    self.multi_gateway_served_by[s],
                ]
            )
        rows.append(["TOTAL", sum(PAPER_SINGLE_SINK.values()), self.total_hops_single,
                     sum(h for h, _ in PAPER_MULTI_GATEWAY.values()), self.total_hops_multi, "-"])
        return format_table(
            ["sensor", "paper 1-sink", "measured", "paper 3-gw", "measured", "gateway"],
            rows,
            title="Fig. 2 — hops to sink(s), single sink vs three gateways",
        )


def _measure(sensor_names, positions, gateway_coords, protocol_cls, seed: int) -> tuple[dict, dict]:
    """Run a protocol on the Fig. 2 field and read S*'s delivered hop counts."""
    named = positions["named"]
    sensor_coords = [named[s] for s in sensor_names] + list(positions["relays"])
    world = (
        WorldBuilder()
        .seed(seed)
        .sensors(np.asarray(sensor_coords))
        .gateways(np.asarray(gateway_coords))
        .comm_range(_COMM_RANGE)
        .ideal_radio()
        .build()
    )
    protocol = world.attach(protocol_cls)
    for idx in range(len(sensor_names)):
        protocol.send_data(idx)
    world.sim.run()
    hops: dict[str, int] = {}
    served: dict[str, int] = {}
    for rec in world.metrics.deliveries:
        if rec.origin < len(sensor_names):
            name = sensor_names[rec.origin]
            hops[name] = rec.hops
            served[name] = rec.destination
    return hops, served


def run_fig2(seed: int = 0) -> Fig2Result:
    """Reproduce both panels of Fig. 2 and return the comparison."""
    positions = build_fig2_positions()
    named = positions["named"]
    sensor_names = ["S1", "S2", "S3", "S4"]

    single_hops, _ = _measure(
        sensor_names, positions, [named["sink"]], FlatSinkRouting, seed
    )

    gateway_names = ["G1", "G2", "G3"]
    multi_hops, served_ids = _measure(
        sensor_names, positions, [named[g] for g in gateway_names], SPR, seed
    )
    n_sensor_nodes = len(sensor_names) + len(positions["relays"])
    served_by = {
        s: gateway_names[gid - n_sensor_nodes] for s, gid in served_ids.items()
    }

    return Fig2Result(
        single_sink_hops=single_hops,
        multi_gateway_hops=multi_hops,
        multi_gateway_served_by=served_by,
        total_hops_single=sum(single_hops.values()),
        total_hops_multi=sum(multi_hops.values()),
    )
