"""E6 — gateway-number model: lifetime and hops vs gateway count k.

Section 4.1 asks "How many gateways are the best for a specified sensor
network?" and cites [34]'s empirical law: lifetime improves with the
number of base stations only up to K_max — the count at which every
sensor sits one hop from the nearest gateway — and flattens beyond it.

We sweep ``k``, placing gateways with the greedy hop-minimising model of
:mod:`repro.core.placement`, run identical SPR traffic with finite
batteries, and report mean hops + lifetime per ``k`` alongside the
analytically computed K_max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.placement import greedy_gateway_placement, kmax_gateway_count
from repro.core.spr import SPR
from repro.experiments.common import (
    default_energy_model,
    make_uniform_scenario,
    run_collection_rounds,
)
from repro.sim.network import uniform_deployment
from repro.sim.serialize import serializable

__all__ = ["GatewayCountResult", "run_gateway_count"]


@serializable
@dataclass(frozen=True)
class GatewayCountRow:
    k: int
    mean_hops_model: float  # analytic greedy-placement hops
    mean_hops_measured: float
    lifetime_rounds: float
    total_energy: float


@serializable
@dataclass(frozen=True)
class GatewayCountResult:
    rows: list
    kmax: int
    max_rounds: int

    def format_table(self) -> str:
        out = format_table(
            ["k", "hops (model)", "hops (sim)", "lifetime_rounds", "energy_J"],
            [
                [r.k, round(r.mean_hops_model, 2), round(r.mean_hops_measured, 2),
                 round(r.lifetime_rounds, 1), r.total_energy]
                for r in self.rows
            ],
            title="E6 — lifetime vs number of gateways",
            ndigits=5,
        )
        return out + f"\nK_max (1-hop cover) = {self.kmax}"

    @property
    def lifetime_series(self) -> list[float]:
        return [r.lifetime_rounds for r in self.rows]


def _candidate_grid(field_size: float, per_side: int = 4) -> np.ndarray:
    xs = np.linspace(field_size / (2 * per_side), field_size * (1 - 1 / (2 * per_side)), per_side)
    gx, gy = np.meshgrid(xs, xs)
    return np.column_stack([gx.ravel(), gy.ravel()])


def run_gateway_count(
    ks: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    n_sensors: int = 60,
    field_size: float = 220.0,
    comm_range: float = 55.0,
    battery: float = 0.03,
    max_rounds: int = 150,
    round_duration: float = 5.0,
    packets_per_round: int = 3,
    seed: int = 1,
) -> GatewayCountResult:
    """Sweep gateway count with greedy placement and measure lifetime."""
    sensors = uniform_deployment(n_sensors, field_size, seed=seed)
    candidates = _candidate_grid(field_size)
    kmax = kmax_gateway_count(sensors, candidates, comm_range)

    rows = []
    for k in ks:
        chosen, model_hops = greedy_gateway_placement(sensors, candidates, k, comm_range)
        gw_positions = candidates[chosen]
        scenario = make_uniform_scenario(
            n_sensors,
            field_size,
            gw_positions,
            comm_range=comm_range,
            sensor_battery=battery,
            topology_seed=seed,
            protocol_seed=seed + 3,
            energy_model=default_energy_model(),
        )
        protocol = SPR(scenario.sim, scenario.network, scenario.channel)
        result = run_collection_rounds(
            scenario,
            protocol,
            num_rounds=max_rounds,
            round_duration=round_duration,
            packets_per_round=packets_per_round,
            stop_on_first_death=True,
            name=f"k={k}",
        )
        lifetime = (
            float(max_rounds)
            if result.lifetime is None
            else result.lifetime / round_duration
        )
        rows.append(
            GatewayCountRow(
                k=k,
                mean_hops_model=model_hops,
                mean_hops_measured=result.mean_hops,
                lifetime_rounds=lifetime,
                total_energy=result.total_energy,
            )
        )
    return GatewayCountResult(rows=rows, kmax=kmax, max_rounds=max_rounds)
