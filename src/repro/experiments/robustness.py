"""E9 — robustness: node/gateway failure and self-healing.

Quantifies two architecture claims:

* *no single point of failure* (Section 1/3): kill one sink under the
  flat architecture and the network is dead; kill one WMG under the
  multi-gateway architecture and traffic re-routes to the survivors;
* *self-healing* (Section 7.1): "as a node leaves the network, the
  remaining nodes automatically re-route their data around the
  out-of-network node" — measured by delivery ratio before and after a
  progressive random sensor die-off, with the RERR-based repair of
  :mod:`repro.core.base` doing the re-routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.spr import SPR
from repro.experiments.common import corner_places, make_uniform_scenario
from repro.obs.ledger import DatumState
from repro.sim.trace import MetricsCollector
from repro.sim.serialize import serializable

__all__ = ["RobustnessResult", "run_robustness"]


@serializable
@dataclass(frozen=True)
class RobustnessRow:
    scenario: str
    protocol: str
    delivery_before: float
    delivery_after: float
    #: Terminal drop reasons of the after-failure phase (from the ledger):
    #: what actually happened to the datums that did not make it.
    drop_reasons: dict = field(default_factory=dict)

    @property
    def retained(self) -> float:
        if self.delivery_before == 0:
            return 0.0
        return self.delivery_after / self.delivery_before


@serializable
@dataclass(frozen=True)
class RobustnessResult:
    rows: list

    def row_for(self, scenario: str, protocol: str) -> RobustnessRow:
        for r in self.rows:
            if r.scenario == scenario and r.protocol == protocol:
                return r
        raise KeyError((scenario, protocol))

    def format_table(self) -> str:
        return format_table(
            ["failure scenario", "protocol", "delivery before", "after", "retained"],
            [
                [r.scenario, r.protocol, round(r.delivery_before, 3),
                 round(r.delivery_after, 3), round(r.retained, 3)]
                for r in self.rows
            ],
            title="E9 — delivery under failures (single sink vs multi-gateway)",
        )


def _phase_delivery(
    metrics: MetricsCollector, generated_before: int, sent_per_phase: int
) -> tuple[float, float, dict]:
    """Split delivery into before/after-failure phases via the ledger.

    Every datum has exactly one terminal state in the ledger, so the
    phase slices are exact — no duplicate deliveries to dedup, no clamp
    to hide overcounting.  Also returns the after-phase terminal drop
    reasons (what the failure actually did to the traffic).
    """
    entries = metrics.ledger.entries.values()
    before = sum(
        1 for e in entries
        if e.state is DatumState.DELIVERED and e.data_id <= generated_before
    )
    after = sum(
        1 for e in entries
        if e.state is DatumState.DELIVERED and e.data_id > generated_before
    )
    drop_reasons: dict[str, int] = {}
    for e in entries:
        if e.state is DatumState.DROPPED and e.data_id > generated_before:
            reason = e.reason or "unknown"
            drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
    db = before / sent_per_phase if sent_per_phase else 0.0
    da = after / sent_per_phase if sent_per_phase else 0.0
    return db, da, dict(sorted(drop_reasons.items()))


def _run_case(
    protocol_name: str,
    failure: str,
    n_sensors: int,
    field_size: float,
    comm_range: float,
    sensor_kill_fraction: float,
    seed: int,
) -> RobustnessRow:
    places = corner_places(field_size)
    if protocol_name == "flat-1-sink":
        gw_positions = [[field_size / 2, field_size / 2]]
    else:
        gw_positions = [list(places.position(p)) for p in ("A", "B", "C")]
    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 17,
        audit=True,
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    protocol = (FlatSinkRouting if protocol_name == "flat-1-sink" else SPR)(sim, net, ch)

    sensors = net.sensor_ids
    # phase 1: healthy network
    for i, s in enumerate(sensors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run(until=5.0)
    generated_before = ch.metrics.data_generated

    # inject failures
    rng = np.random.default_rng(seed + 23)
    killed: list[int] = []
    if failure == "gateway":
        victim = net.gateway_ids[0]
        net.nodes[victim].fail()
        killed.append(victim)
    elif failure == "sensors":
        k = max(1, int(sensor_kill_fraction * len(sensors)))
        for v in rng.choice(sensors, size=k, replace=False):
            net.nodes[int(v)].fail()
            killed.append(int(v))
    else:
        raise ValueError(failure)

    # phase 2: degraded network (survivors keep reporting)
    survivors = [s for s in sensors if net.nodes[s].alive]
    for i, s in enumerate(survivors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run()

    scenario.assert_conserved()
    before, after, drop_reasons = _phase_delivery(ch.metrics, generated_before, len(sensors))
    # Normalise the after-phase to the survivors that actually sent.
    after = after * len(sensors) / max(1, len(survivors))
    return RobustnessRow(
        scenario=failure,
        protocol=protocol_name,
        delivery_before=before,
        delivery_after=after,
        drop_reasons=drop_reasons,
    )


def run_robustness(
    n_sensors: int = 50,
    field_size: float = 200.0,
    comm_range: float = 55.0,
    sensor_kill_fraction: float = 0.15,
    seed: int = 5,
) -> RobustnessResult:
    """Gateway-loss and sensor-die-off cases for both architectures."""
    rows = []
    for failure in ("gateway", "sensors"):
        for protocol_name in ("flat-1-sink", "SPR-3-gw"):
            rows.append(
                _run_case(
                    protocol_name, failure, n_sensors, field_size,
                    comm_range, sensor_kill_fraction, seed,
                )
            )
    return RobustnessResult(rows=rows)
