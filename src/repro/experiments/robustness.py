"""E9 — robustness: node/gateway failure and self-healing.

Quantifies two architecture claims:

* *no single point of failure* (Section 1/3): kill one sink under the
  flat architecture and the network is dead; kill one WMG under the
  multi-gateway architecture and traffic re-routes to the survivors;
* *self-healing* (Section 7.1): "as a node leaves the network, the
  remaining nodes automatically re-route their data around the
  out-of-network node" — measured by delivery ratio before and after a
  progressive random sensor die-off, with the RERR-based repair of
  :mod:`repro.core.base` doing the re-routing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.spr import SPR
from repro.experiments.common import corner_places, make_uniform_scenario
from repro.sim.trace import MetricsCollector
from repro.sim.serialize import serializable

__all__ = ["RobustnessResult", "run_robustness"]


@serializable
@dataclass(frozen=True)
class RobustnessRow:
    scenario: str
    protocol: str
    delivery_before: float
    delivery_after: float

    @property
    def retained(self) -> float:
        if self.delivery_before == 0:
            return 0.0
        return self.delivery_after / self.delivery_before


@serializable
@dataclass(frozen=True)
class RobustnessResult:
    rows: list

    def row_for(self, scenario: str, protocol: str) -> RobustnessRow:
        for r in self.rows:
            if r.scenario == scenario and r.protocol == protocol:
                return r
        raise KeyError((scenario, protocol))

    def format_table(self) -> str:
        return format_table(
            ["failure scenario", "protocol", "delivery before", "after", "retained"],
            [
                [r.scenario, r.protocol, round(r.delivery_before, 3),
                 round(r.delivery_after, 3), round(r.retained, 3)]
                for r in self.rows
            ],
            title="E9 — delivery under failures (single sink vs multi-gateway)",
        )


def _phase_delivery(metrics: MetricsCollector, generated_before: int, sent_per_phase: int) -> tuple[float, float]:
    """Split delivery ratio into before/after-failure phases by data id."""
    before = {(r.origin, r.uid) for r in metrics.deliveries if r.uid <= generated_before}
    after = {(r.origin, r.uid) for r in metrics.deliveries if r.uid > generated_before}
    db = len(before) / sent_per_phase if sent_per_phase else 0.0
    da = len(after) / sent_per_phase if sent_per_phase else 0.0
    return min(1.0, db), min(1.0, da)


def _run_case(
    protocol_name: str,
    failure: str,
    n_sensors: int,
    field_size: float,
    comm_range: float,
    sensor_kill_fraction: float,
    seed: int,
) -> RobustnessRow:
    places = corner_places(field_size)
    if protocol_name == "flat-1-sink":
        gw_positions = [[field_size / 2, field_size / 2]]
    else:
        gw_positions = [list(places.position(p)) for p in ("A", "B", "C")]
    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 17,
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    protocol = (FlatSinkRouting if protocol_name == "flat-1-sink" else SPR)(sim, net, ch)

    sensors = net.sensor_ids
    # phase 1: healthy network
    for i, s in enumerate(sensors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run(until=5.0)
    generated_before = ch.metrics.data_generated

    # inject failures
    rng = np.random.default_rng(seed + 23)
    killed: list[int] = []
    if failure == "gateway":
        victim = net.gateway_ids[0]
        net.nodes[victim].fail()
        killed.append(victim)
    elif failure == "sensors":
        k = max(1, int(sensor_kill_fraction * len(sensors)))
        for v in rng.choice(sensors, size=k, replace=False):
            net.nodes[int(v)].fail()
            killed.append(int(v))
    else:
        raise ValueError(failure)

    # phase 2: degraded network (survivors keep reporting)
    survivors = [s for s in sensors if net.nodes[s].alive]
    for i, s in enumerate(survivors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run()

    before, after = _phase_delivery(ch.metrics, generated_before, len(sensors))
    # Normalise the after-phase to the survivors that actually sent.
    after = after * len(sensors) / max(1, len(survivors))
    return RobustnessRow(
        scenario=failure,
        protocol=protocol_name,
        delivery_before=before,
        delivery_after=min(1.0, after),
    )


def run_robustness(
    n_sensors: int = 50,
    field_size: float = 200.0,
    comm_range: float = 55.0,
    sensor_kill_fraction: float = 0.15,
    seed: int = 5,
) -> RobustnessResult:
    """Gateway-loss and sensor-die-off cases for both architectures."""
    rows = []
    for failure in ("gateway", "sensors"):
        for protocol_name in ("flat-1-sink", "SPR-3-gw"):
            rows.append(
                _run_case(
                    protocol_name, failure, n_sensors, field_size,
                    comm_range, sensor_kill_fraction, seed,
                )
            )
    return RobustnessResult(rows=rows)
