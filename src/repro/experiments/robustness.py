"""E9 — robustness: node/gateway failure, churn, and self-healing.

Quantifies three architecture claims:

* *no single point of failure* (Section 1/3): kill one sink under the
  flat architecture and the network is dead; kill one WMG under the
  multi-gateway architecture and traffic re-routes to the survivors;
* *self-healing* (Section 7.1): "as a node leaves the network, the
  remaining nodes automatically re-route their data around the
  out-of-network node" — measured by delivery ratio before and after a
  progressive random sensor die-off, with the RERR-based repair of
  :mod:`repro.core.base` doing the re-routing;
* *recovery* (Section 8): gateways that crash *and return* — a
  round-robin :class:`~repro.faults.plan.GatewayChurn` storm where every
  gateway takes a turn being down while traffic keeps flowing, reported
  with MTTR and availability from the fault injector's timeline.

All failures are expressed as declarative
:class:`~repro.faults.plan.FaultPlan` events armed at world-build time,
so every case replays bit-identically and carries the realized outage
timeline (:mod:`repro.obs.recovery`) alongside the delivery numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.flat import FlatSinkRouting
from repro.core.spr import SPR
from repro.experiments.common import corner_places, make_uniform_scenario
from repro.faults.plan import Crash, FaultPlan, GatewayChurn
from repro.obs.ledger import DatumState
from repro.sim.trace import MetricsCollector
from repro.sim.serialize import serializable
from repro.world import WorldConfig

__all__ = ["RobustnessResult", "run_robustness"]

#: when the failure plans strike (phase 1 of every case ends here)
FAIL_AT = 5.0


@serializable
@dataclass(frozen=True)
class RobustnessRow:
    scenario: str
    protocol: str
    delivery_before: float
    delivery_after: float
    #: Terminal drop reasons of the after-failure phase (from the ledger):
    #: what actually happened to the datums that did not make it.
    drop_reasons: dict = field(default_factory=dict)
    #: Mean time-to-restore over the case's fault windows (seconds from
    #: outage onset to the next delivered datum); ``None`` when service
    #: never resumed after some fault.
    mttr: Optional[float] = None
    #: ``1 - node_downtime / (n_nodes * horizon)`` over the run.
    availability: Optional[float] = None

    @property
    def retained(self) -> float:
        if self.delivery_before == 0:
            return 0.0
        return self.delivery_after / self.delivery_before


@serializable
@dataclass(frozen=True)
class RobustnessResult:
    rows: list

    def row_for(self, scenario: str, protocol: str) -> RobustnessRow:
        for r in self.rows:
            if r.scenario == scenario and r.protocol == protocol:
                return r
        raise KeyError((scenario, protocol))

    def format_table(self) -> str:
        return format_table(
            ["failure scenario", "protocol", "delivery before", "after",
             "retained", "MTTR_s", "avail"],
            [
                [r.scenario, r.protocol, round(r.delivery_before, 3),
                 round(r.delivery_after, 3), round(r.retained, 3),
                 "-" if r.mttr is None else round(r.mttr, 2),
                 "-" if r.availability is None else round(r.availability, 4)]
                for r in self.rows
            ],
            title="E9 — delivery under failures (single sink vs multi-gateway)",
        )


def _phase_delivery(
    metrics: MetricsCollector,
    generated_before: int,
    sent_before: int,
    sent_after: int,
) -> tuple[float, float, dict]:
    """Split delivery into before/after-failure phases via the ledger.

    Every datum has exactly one terminal state in the ledger, so the
    phase slices are exact — no duplicate deliveries to dedup, no clamp
    to hide overcounting.  Also returns the after-phase terminal drop
    reasons (what the failure actually did to the traffic).
    """
    entries = metrics.ledger.entries.values()
    before = sum(
        1 for e in entries
        if e.state is DatumState.DELIVERED and e.data_id <= generated_before
    )
    after = sum(
        1 for e in entries
        if e.state is DatumState.DELIVERED and e.data_id > generated_before
    )
    drop_reasons: dict[str, int] = {}
    for e in entries:
        if e.state is DatumState.DROPPED and e.data_id > generated_before:
            reason = e.reason or "unknown"
            drop_reasons[reason] = drop_reasons.get(reason, 0) + 1
    db = before / sent_before if sent_before else 0.0
    da = after / sent_after if sent_after else 0.0
    return db, da, dict(sorted(drop_reasons.items()))


def _failure_plan(
    failure: str, n_sensors: int, sensor_kill_fraction: float, seed: int
) -> tuple[FaultPlan, list[int]]:
    """The declarative failure for one case plus the victim list.

    Node ids are knowable before the world exists: sensors occupy
    ``0..n_sensors-1`` and gateways follow, so the first gateway is
    ``n_sensors`` regardless of how many there are.
    """
    if failure == "gateway":
        return FaultPlan((Crash(node=n_sensors, t=FAIL_AT),)), [n_sensors]
    if failure == "sensors":
        rng = np.random.default_rng(seed + 23)
        sensors = list(range(n_sensors))
        k = max(1, int(sensor_kill_fraction * len(sensors)))
        killed = [int(v) for v in rng.choice(sensors, size=k, replace=False)]
        return FaultPlan(tuple(Crash(node=v, t=FAIL_AT) for v in killed)), killed
    raise ValueError(failure)


def _run_case(
    protocol_name: str,
    failure: str,
    n_sensors: int,
    field_size: float,
    comm_range: float,
    sensor_kill_fraction: float,
    seed: int,
) -> RobustnessRow:
    places = corner_places(field_size)
    if protocol_name == "flat-1-sink":
        gw_positions = [[field_size / 2, field_size / 2]]
    else:
        gw_positions = [list(places.position(p)) for p in ("A", "B", "C")]
    plan, killed = _failure_plan(failure, n_sensors, sensor_kill_fraction, seed)
    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 17,
        world=WorldConfig(audit=True, faults=plan),
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    protocol = (FlatSinkRouting if protocol_name == "flat-1-sink" else SPR)(sim, net, ch)

    sensors = net.sensor_ids
    # phase 1: healthy network
    for i, s in enumerate(sensors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run(until=FAIL_AT)
    generated_before = ch.metrics.data_generated

    # phase 2: degraded network (survivors keep reporting).  The crash
    # events sit on the queue at FAIL_AT, strictly before this traffic.
    dead = set(killed)
    survivors = [s for s in sensors if s not in dead]
    for i, s in enumerate(survivors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run()

    scenario.assert_conserved()
    before, after, drop_reasons = _phase_delivery(
        ch.metrics, generated_before, len(sensors), len(sensors)
    )
    # Normalise the after-phase to the survivors that actually sent.
    after = after * len(sensors) / max(1, len(survivors))
    report = scenario.faults.recovery_report()
    return RobustnessRow(
        scenario=failure,
        protocol=protocol_name,
        delivery_before=before,
        delivery_after=after,
        drop_reasons=drop_reasons,
        mttr=report.mttr,
        availability=report.availability,
    )


def _run_churn_case(
    n_sensors: float,
    field_size: float,
    comm_range: float,
    seed: int,
) -> RobustnessRow:
    """Round-robin gateway churn under SPR: every gateway takes a turn down.

    Gateways go down one at a time on ``[5, 8)``, ``[11, 14)`` and
    ``[17, 20)``; a traffic round launches into each outage window, so
    the after-phase delivery measures re-routing *and* rejoin (recovered
    gateways serve again, with their stale routes purged).
    """
    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in ("A", "B", "C")]
    plan = FaultPlan((GatewayChurn(period=6.0, downtime=3.0, start=FAIL_AT, cycles=1),))
    scenario = make_uniform_scenario(
        n_sensors, field_size, gw_positions,
        comm_range=comm_range, topology_seed=seed, protocol_seed=seed + 17,
        world=WorldConfig(audit=True, faults=plan),
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    protocol = SPR(sim, net, ch)

    sensors = net.sensor_ids
    for i, s in enumerate(sensors):
        sim.schedule(0.5 + (i % 53) * 1e-3, protocol.send_data, s)
    sim.run(until=FAIL_AT)
    generated_before = ch.metrics.data_generated

    churn_rounds = 3
    for r in range(churn_rounds):
        for i, s in enumerate(sensors):
            sim.schedule_at(
                FAIL_AT + 0.5 + r * 6.0 + (i % 53) * 1e-3, protocol.send_data, s
            )
    sim.run()

    scenario.assert_conserved()
    before, after, drop_reasons = _phase_delivery(
        ch.metrics, generated_before, len(sensors), churn_rounds * len(sensors)
    )
    report = scenario.faults.recovery_report()
    return RobustnessRow(
        scenario="gateway_churn",
        protocol="SPR-3-gw",
        delivery_before=before,
        delivery_after=after,
        drop_reasons=drop_reasons,
        mttr=report.mttr,
        availability=report.availability,
    )


def run_robustness(
    n_sensors: int = 50,
    field_size: float = 200.0,
    comm_range: float = 55.0,
    sensor_kill_fraction: float = 0.15,
    seed: int = 5,
) -> RobustnessResult:
    """Gateway-loss, sensor-die-off and gateway-churn cases."""
    rows = []
    for failure in ("gateway", "sensors"):
        for protocol_name in ("flat-1-sink", "SPR-3-gw"):
            rows.append(
                _run_case(
                    protocol_name, failure, n_sensors, field_size,
                    comm_range, sensor_kill_fraction, seed,
                )
            )
    rows.append(_run_churn_case(n_sensors, field_size, comm_range, seed))
    return RobustnessResult(rows=rows)
