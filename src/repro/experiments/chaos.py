"""E14 — chaos: randomized fault campaigns under conservation audit.

Thin registry shim: the implementation lives in
:mod:`repro.faults.campaign` (next to the plan/injector machinery it
exercises), but the experiment is registered from here so the
experiments package remains the single directory of runnable paper
experiments — one module per registry entry.
"""

from repro.faults.campaign import ChaosResult, run_chaos

__all__ = ["ChaosResult", "run_chaos"]
