"""Chaos campaigns: randomized, seeded fault storms under full audit.

``run_chaos`` is the registry's ``"chaos"`` experiment (E14): build a
uniform SPR deployment, arm a :class:`~repro.faults.plan.FaultPlan` (an
explicit one from params, or a randomized plan derived deterministically
from the seed), drive periodic collection traffic through the storm, and
report three things side by side:

* **conservation** — the run always executes with the packet ledger
  attached and strict auditing at quiescence, so every generated datum
  is provably delivered, dropped-with-reason, or the run raises;
* **recovery** — MTTR / availability / downtime from the injector's
  realized fault timeline (:mod:`repro.obs.recovery`);
* **delivery** — the headline ratio plus the terminal drop breakdown.

The randomized plan is a pure function of the campaign parameters and
the seed, so chaos cells cache and replay bit-identically like every
other experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import format_table
from repro.core.spr import SPR
from repro.exceptions import ConfigurationError
from repro.experiments.common import corner_places, make_uniform_scenario
from repro.faults.plan import (
    BatteryDrain,
    Crash,
    FaultPlan,
    LinkDegrade,
    Recover,
    RegionOutage,
)
from repro.obs.recovery import RecoveryReport
from repro.sim.radio import GilbertElliott
from repro.sim.serialize import serializable
from repro.world import WorldConfig

__all__ = ["ChaosResult", "random_plan", "run_chaos"]

#: gateway labels available from :func:`corner_places`
_PLACE_LABELS = ("A", "B", "C", "D", "E")


def random_plan(
    n_sensors: int,
    n_gateways: int,
    horizon: float,
    field_size: float,
    intensity: float = 0.3,
    burst: bool = True,
    seed: int = 0,
) -> FaultPlan:
    """A randomized but fully seed-determined fault storm.

    All faults land in ``[0.15, 0.6] * horizon`` and every crash
    recovers by ``0.8 * horizon``, so traffic scheduled in the final
    fifth of the run exercises the recovered network — keeping restore
    latencies finite when the topology permits delivery at all.
    ``intensity`` scales how many sensors are hit; past ``0.5`` the
    storm adds a region outage.  The plan is a pure function of the
    arguments: same seed, same storm.
    """
    import numpy as np

    if not 0.0 <= intensity <= 1.0:
        raise ConfigurationError(f"intensity must be in [0, 1], got {intensity}")
    rng = np.random.default_rng(seed)
    events: list = []

    # sensor crashes + recoveries
    n_crash = max(1, int(round(intensity * n_sensors * 0.2)))
    victims = rng.choice(n_sensors, size=min(n_crash, n_sensors), replace=False)
    for v in victims:
        down = float(rng.uniform(0.15, 0.55)) * horizon
        up = down + float(rng.uniform(0.08, 0.2)) * horizon
        events.append(Crash(node=int(v), t=round(down, 6)))
        events.append(Recover(node=int(v), t=round(min(up, 0.8 * horizon), 6)))

    # one gateway outage (only when survivors remain to reroute to)
    if n_gateways >= 2:
        gw = n_sensors + int(rng.integers(n_gateways))
        down = float(rng.uniform(0.2, 0.4)) * horizon
        events.append(Crash(node=gw, t=round(down, 6)))
        events.append(Recover(node=gw, t=round(down + 0.15 * horizon, 6)))

    # battery drains: harassment, never instant death (fraction < 1)
    n_drain = max(1, int(round(intensity * n_sensors * 0.1)))
    drained = rng.choice(n_sensors, size=min(n_drain, n_sensors), replace=False)
    for v in drained:
        events.append(
            BatteryDrain(
                node=int(v),
                t=round(float(rng.uniform(0.15, 0.6)) * horizon, 6),
                fraction=round(float(rng.uniform(0.1, 0.4)), 6),
            )
        )

    # a bursty-loss window over the middle of the run
    if burst:
        t0 = float(rng.uniform(0.3, 0.4)) * horizon
        events.append(
            LinkDegrade(
                t0=round(t0, 6),
                t1=round(t0 + 0.15 * horizon, 6),
                burst=GilbertElliott(p_gb=0.12, p_bg=0.45, loss_good=0.02, loss_bad=0.7),
            )
        )

    # a localized environmental outage for intense storms
    if intensity > 0.5:
        center = (
            round(float(rng.uniform(0.25, 0.75)) * field_size, 6),
            round(float(rng.uniform(0.25, 0.75)) * field_size, 6),
        )
        t0 = float(rng.uniform(0.3, 0.45)) * horizon
        events.append(
            RegionOutage(
                center=center,
                radius=round(0.2 * field_size, 6),
                t0=round(t0, 6),
                t1=round(t0 + 0.15 * horizon, 6),
            )
        )

    return FaultPlan(tuple(events))


@serializable
@dataclass
class ChaosResult:
    """One chaos cell: conservation + recovery + delivery, side by side."""

    n_sensors: int
    n_gateways: int
    rounds: int
    seed: int
    n_fault_events: int
    generated: int
    delivered: int
    dropped: int
    pending: int
    delivery_ratio: float
    drop_reasons: dict = field(default_factory=dict)
    recovery: Optional[RecoveryReport] = None
    # flat copies of the headline recovery numbers so sweep aggregation
    # (which summarizes numeric top-level fields) picks them up
    mttr: Optional[float] = None
    availability: float = 1.0
    n_windows: int = 0

    def format_table(self) -> str:
        rows = [
            ["generated", self.generated],
            ["delivered", self.delivered],
            ["dropped", self.dropped],
            ["pending", self.pending],
            ["delivery ratio", round(self.delivery_ratio, 3)],
        ]
        for reason, count in sorted(self.drop_reasons.items()):
            rows.append([f"  drop: {reason}", count])
        table = format_table(
            ["conservation", "count"],
            rows,
            title=(
                f"E14 — chaos campaign (seed {self.seed}, "
                f"{self.n_fault_events} fault events)"
            ),
        )
        if self.recovery is not None:
            table += "\n" + self.recovery.format_table()
        return table


def run_chaos(
    n_sensors: int = 50,
    field_size: float = 200.0,
    comm_range: float = 55.0,
    n_gateways: int = 3,
    rounds: int = 6,
    round_period: float = 6.0,
    sensor_battery: float = math.inf,
    fault_plan=None,
    intensity: float = 0.3,
    burst: bool = True,
    seed: int = 0,
) -> ChaosResult:
    """Run one seeded chaos cell (always audited, regardless of env).

    ``fault_plan`` takes an explicit plan (object or jsonable form, as a
    sweep params dict carries it); when ``None`` a randomized plan is
    derived deterministically from the other arguments and the seed.
    """
    if not 1 <= n_gateways <= len(_PLACE_LABELS):
        raise ConfigurationError(
            f"n_gateways must be in [1, {len(_PLACE_LABELS)}], got {n_gateways}"
        )
    horizon = rounds * round_period
    if fault_plan is not None:
        plan = FaultPlan.from_param(fault_plan)
    else:
        plan = random_plan(
            n_sensors=n_sensors,
            n_gateways=n_gateways,
            horizon=horizon,
            field_size=field_size,
            intensity=intensity,
            burst=burst,
            seed=seed,
        )

    places = corner_places(field_size)
    gw_positions = [list(places.position(p)) for p in _PLACE_LABELS[:n_gateways]]
    scenario = make_uniform_scenario(
        n_sensors,
        field_size,
        gw_positions,
        comm_range=comm_range,
        sensor_battery=sensor_battery,
        topology_seed=seed,
        protocol_seed=seed + 17,
        world=WorldConfig(audit=True, faults=plan),
    )
    sim, net, ch = scenario.sim, scenario.network, scenario.channel
    protocol = SPR(sim, net, ch)

    for r in range(rounds):
        for i, s in enumerate(net.sensor_ids):
            # deterministic stagger (same shape as run_collection_rounds)
            sim.schedule_at(r * round_period + 0.5 + (i % 97) * 1e-3,
                            protocol.send_data, s)
    sim.run()

    report = scenario.faults.recovery_report()
    cons = scenario.conservation_report(strict=True)
    return ChaosResult(
        n_sensors=n_sensors,
        n_gateways=n_gateways,
        rounds=rounds,
        seed=seed,
        n_fault_events=len(plan),
        generated=cons.generated,
        delivered=cons.delivered,
        dropped=cons.dropped,
        pending=cons.pending,
        delivery_ratio=ch.metrics.delivery_ratio,
        drop_reasons=dict(sorted(cons.drops_by_reason.items())),
        recovery=report,
        mttr=report.mttr,
        availability=report.availability,
        n_windows=report.n_faults,
    )
