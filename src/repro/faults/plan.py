"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a serializable value object — an ordered tuple of
fault events, each a frozen ``@serializable`` dataclass.  Plans carry no
behaviour: the :class:`~repro.faults.injector.FaultInjector` compiles
them onto the simulator event queue at world-build time.  Because plans
round-trip through :mod:`repro.sim.serialize` they travel inside sweep
params, hash into cache keys, and replay bit-identically from
``.repro_cache`` — the same plan plus the same seed is the same run.

Event vocabulary (Section 8's failure discussion, made concrete):

:class:`Crash` / :class:`Recover`
    Hardware fail-stop at ``t`` and (optionally) repair at a later ``t``.
:class:`RegionOutage`
    Every node inside a disc goes down on ``[t0, t1)`` — a localized
    environmental event (fire, flooding) in the pervasive deployments
    the paper targets.  Victims are resolved at ``t0`` against node
    positions, so mobile topologies fault whoever is actually there.
:class:`GatewayChurn`
    Gateways crash and recover round-robin: one every ``period``
    seconds, each down for ``downtime``.
:class:`BatteryDrain`
    Instantly drains a fraction of the node's *remaining* energy —
    models an unmodelled consumer (sensing burst, cold snap).  A
    fraction of 1.0 is battery death, which is permanent.
:class:`LinkDegrade`
    Swap the channel config on ``[t0, t1)`` — raise i.i.d. loss and/or
    enable the Gilbert–Elliott bursty-loss chain — then restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.exceptions import ConfigurationError
from repro.sim.radio import GilbertElliott
from repro.sim.serialize import from_jsonable, serializable, to_jsonable

__all__ = [
    "Crash",
    "Recover",
    "RegionOutage",
    "GatewayChurn",
    "BatteryDrain",
    "LinkDegrade",
    "FaultPlan",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigurationError(msg)


@serializable
@dataclass(frozen=True)
class Crash:
    """Fail-stop node ``node`` at time ``t`` (hardware fault, not battery)."""

    node: int
    t: float

    def __post_init__(self) -> None:
        _require(self.t >= 0.0, f"crash time must be >= 0, got {self.t}")


@serializable
@dataclass(frozen=True)
class Recover:
    """Repair node ``node`` at time ``t``.

    A no-op on nodes that are not failed; battery-dead nodes stay dead
    (the injector checks :meth:`~repro.sim.node.Node.recover`'s return
    before rejoining the node to the protocol).
    """

    node: int
    t: float

    def __post_init__(self) -> None:
        _require(self.t >= 0.0, f"recover time must be >= 0, got {self.t}")


@serializable
@dataclass(frozen=True)
class RegionOutage:
    """All nodes within ``radius`` of ``center`` are down on ``[t0, t1)``."""

    center: tuple
    radius: float
    t0: float
    t1: float

    def __post_init__(self) -> None:
        _require(len(self.center) == 2, "region center must be an (x, y) pair")
        _require(self.radius >= 0.0, f"region radius must be >= 0, got {self.radius}")
        _require(0.0 <= self.t0 < self.t1, f"need 0 <= t0 < t1, got [{self.t0}, {self.t1})")


@serializable
@dataclass(frozen=True)
class GatewayChurn:
    """Round-robin gateway crashes: one every ``period``, down ``downtime``.

    Starting at ``start``, gateway ``k`` (in network id order) goes down
    at ``start + k * period`` for ``downtime`` seconds; after the last
    gateway the cycle repeats ``cycles`` times in total.  ``downtime <
    period`` keeps at most one gateway down at a time (the interesting
    regime: traffic must redirect, not die); overlap is allowed but the
    injector leaves already-failed nodes alone rather than stacking.
    """

    period: float
    downtime: float
    start: float = 0.0
    cycles: int = 1

    def __post_init__(self) -> None:
        _require(self.period > 0.0, f"churn period must be > 0, got {self.period}")
        _require(self.downtime > 0.0, f"churn downtime must be > 0, got {self.downtime}")
        _require(self.start >= 0.0, f"churn start must be >= 0, got {self.start}")
        _require(self.cycles >= 1, f"churn cycles must be >= 1, got {self.cycles}")


@serializable
@dataclass(frozen=True)
class BatteryDrain:
    """Drain ``fraction`` of node ``node``'s remaining energy at ``t``.

    Mains-powered nodes (infinite capacity) are unaffected.  Draining to
    zero kills the node permanently — no :class:`Recover` resurrects it.
    """

    node: int
    t: float
    fraction: float

    def __post_init__(self) -> None:
        _require(self.t >= 0.0, f"drain time must be >= 0, got {self.t}")
        _require(0.0 <= self.fraction <= 1.0,
                 f"drain fraction must be in [0, 1], got {self.fraction}")


@serializable
@dataclass(frozen=True)
class LinkDegrade:
    """Degrade the shared channel on ``[t0, t1)``, then restore it.

    Either or both of ``loss_rate`` (i.i.d.) and ``burst`` (a
    :class:`~repro.sim.radio.GilbertElliott` chain) may be set; unset
    fields keep the channel's current values.  At ``t1`` the config
    captured at ``t0`` is restored — overlapping degrade windows
    therefore resolve last-restore-wins.
    """

    t0: float
    t1: float
    loss_rate: Optional[float] = None
    burst: Optional[GilbertElliott] = None

    def __post_init__(self) -> None:
        _require(0.0 <= self.t0 < self.t1, f"need 0 <= t0 < t1, got [{self.t0}, {self.t1})")
        if self.loss_rate is not None:
            _require(0.0 <= self.loss_rate <= 1.0,
                     f"loss_rate must be in [0, 1], got {self.loss_rate}")
        _require(self.loss_rate is not None or self.burst is not None,
                 "a LinkDegrade must set loss_rate and/or burst")


FaultEvent = Union[Crash, Recover, RegionOutage, GatewayChurn, BatteryDrain, LinkDegrade]
_EVENT_TYPES = (Crash, Recover, RegionOutage, GatewayChurn, BatteryDrain, LinkDegrade)


@serializable
@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serializable collection of fault events.

    Event order is part of the plan's identity (it fixes the simulator's
    tie-break order for same-time events), so two plans with the same
    events in different order hash to different cache keys — and replay
    in their own, internally consistent order.
    """

    events: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, _EVENT_TYPES):
                raise ConfigurationError(
                    f"not a fault event: {ev!r} (expected one of "
                    f"{', '.join(t.__name__ for t in _EVENT_TYPES)})"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def extend(self, *events: FaultEvent) -> "FaultPlan":
        """A new plan with ``events`` appended (plans are immutable)."""
        return FaultPlan(self.events + tuple(events))

    @property
    def last_event_time(self) -> float:
        """Latest timestamp any event in the plan touches (0 when empty).

        ``GatewayChurn`` is unbounded by gateway count here, so its
        contribution uses only the schedule the plan itself fixes; the
        injector knows the real end once it sees the network.
        """
        latest = 0.0
        for ev in self.events:
            if isinstance(ev, (Crash, Recover, BatteryDrain)):
                latest = max(latest, ev.t)
            elif isinstance(ev, (RegionOutage, LinkDegrade)):
                latest = max(latest, ev.t1)
            elif isinstance(ev, GatewayChurn):
                latest = max(latest, ev.start + ev.cycles * ev.period + ev.downtime)
        return latest

    # -- param-boundary helpers ----------------------------------------
    def to_param(self) -> dict:
        """Encode for an experiment params dict / sweep cache key."""
        return to_jsonable(self)

    @classmethod
    def from_param(cls, value) -> "FaultPlan":
        """Decode a params-dict value: a plan, its jsonable form, or None."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        decoded = from_jsonable(value)
        if not isinstance(decoded, cls):
            raise ConfigurationError(f"not a FaultPlan: {value!r}")
        return decoded
