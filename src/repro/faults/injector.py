"""Compile a :class:`~repro.faults.plan.FaultPlan` onto the event queue.

The injector is armed once, at world-build time, before any protocol
traffic is scheduled.  Every fault event becomes one or more absolute-
time simulator events (:meth:`~repro.sim.engine.Simulator.schedule_at`),
so fault timing is part of the deterministic event order: the same plan
on the same seed replays bit-identically, interleaved with traffic the
same way every run.

While the run executes, the injector keeps the *realized* fault
timeline — a list of :class:`~repro.obs.recovery.FaultWindow` rows
recording when each node actually went down and came back.  The plan
says what was *asked*; the timeline says what *happened* (a Recover on
a battery-dead node leaves its window open forever, a RegionOutage's
victim set depends on who stood in the disc at ``t0``).

Recovery protocol contract: after :meth:`~repro.sim.node.Node.recover`
returns True the injector calls ``protocol.on_node_recovered(node_id)``
if the attached protocol exposes it (the layered stack does; baselines
may not — they simply rejoin with stale state, which is itself a
measurable behaviour).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.faults.plan import (
    BatteryDrain,
    Crash,
    FaultPlan,
    GatewayChurn,
    LinkDegrade,
    Recover,
    RegionOutage,
)
from repro.obs.recovery import FaultWindow, RecoveryReport, recovery_report
from repro.sim.node import NodeKind

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a fault plan on a world and records the realized timeline."""

    def __init__(self, world, plan: FaultPlan) -> None:
        self.world = world
        self.plan = plan
        #: realized outage windows, in the order they opened
        self.windows: list[FaultWindow] = []
        self._open: dict[int, int] = {}  # node id -> index into windows
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every plan event; idempotence guard (arm exactly once)."""
        if self._armed:
            raise ConfigurationError("fault injector is already armed")
        self._armed = True
        for ev in self.plan.events:
            self._arm_event(ev)
        return self

    def _arm_event(self, ev) -> None:
        sim = self.world.sim
        if isinstance(ev, Crash):
            sim.schedule_at(ev.t, self._crash, ev.node, "crash")
        elif isinstance(ev, Recover):
            sim.schedule_at(ev.t, self._recover, ev.node)
        elif isinstance(ev, RegionOutage):
            sim.schedule_at(ev.t0, self._region_down, ev)
        elif isinstance(ev, GatewayChurn):
            self._arm_churn(ev)
        elif isinstance(ev, BatteryDrain):
            sim.schedule_at(ev.t, self._drain, ev.node, ev.fraction)
        elif isinstance(ev, LinkDegrade):
            sim.schedule_at(ev.t0, self._degrade_begin, ev)
        else:  # pragma: no cover - FaultPlan already validates
            raise ConfigurationError(f"unknown fault event {ev!r}")

    def _arm_churn(self, ev: GatewayChurn) -> None:
        """Unroll the churn schedule over the world's actual gateways."""
        gateways = [
            n.node_id for n in self.world.network.nodes if n.kind is NodeKind.GATEWAY
        ]
        if not gateways:
            raise ConfigurationError("gateway_churn on a world with no gateways")
        sim = self.world.sim
        slot = 0
        for _cycle in range(ev.cycles):
            for gw in gateways:
                down_at = ev.start + slot * ev.period
                sim.schedule_at(down_at, self._crash, gw, "churn")
                sim.schedule_at(down_at + ev.downtime, self._recover, gw)
                slot += 1

    # ------------------------------------------------------------------
    # event handlers (run on the simulator clock)
    # ------------------------------------------------------------------
    def _crash(self, node_id: int, cause: str) -> None:
        node = self.world.network.nodes[node_id]
        if node.failed or not node.energy.alive:
            return  # already down: overlapping faults do not stack windows
        node.fail()
        self._open[node_id] = len(self.windows)
        self.windows.append(
            FaultWindow(node=node_id, down_at=self.world.sim.now, cause=cause)
        )

    def _recover(self, node_id: int) -> None:
        node = self.world.network.nodes[node_id]
        was_failed = node.failed
        alive = node.recover()
        if not alive:
            # Battery died while (or before) the node was down: permanent.
            # The window stays open — downtime runs to the horizon.
            return
        idx = self._open.pop(node_id, None)
        if idx is not None:
            self.windows[idx].up_at = self.world.sim.now
        if was_failed:
            hook = getattr(self.world.protocol, "on_node_recovered", None)
            if hook is not None:
                hook(node_id)

    def _region_down(self, ev: RegionOutage) -> None:
        victims = self.world.network.nodes_in_region(ev.center, ev.radius)
        crashed = []
        for node_id in victims:
            node = self.world.network.nodes[node_id]
            if node.failed or not node.energy.alive:
                continue
            self._crash(node_id, "region")
            crashed.append(node_id)
        if crashed:
            self.world.sim.schedule_at(ev.t1, self._region_up, crashed)

    def _region_up(self, crashed: list) -> None:
        for node_id in crashed:
            self._recover(node_id)

    def _drain(self, node_id: int, fraction: float) -> None:
        node = self.world.network.nodes[node_id]
        acct = node.energy
        if math.isinf(acct.capacity) or not acct.alive:
            return  # mains-powered or already dead: nothing to drain
        was_alive = acct.alive
        acct.charge_idle(acct.remaining * fraction, self.world.sim.now)
        if was_alive and not acct.alive:
            now = self.world.sim.now
            self.world.metrics.on_node_death(node_id, now)
            # Battery death is an outage that never closes.
            self._open[node_id] = len(self.windows)
            self.windows.append(FaultWindow(node=node_id, down_at=now, cause="battery"))

    def _degrade_begin(self, ev: LinkDegrade) -> None:
        channel = self.world.channel
        saved = channel.config
        channel.config = replace(
            saved,
            loss_rate=ev.loss_rate if ev.loss_rate is not None else saved.loss_rate,
            burst=ev.burst if ev.burst is not None else saved.burst,
        )
        self.world.sim.schedule_at(ev.t1, self._degrade_end, saved)

    def _degrade_end(self, saved) -> None:
        self.world.channel.config = saved

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def recovery_report(self, horizon: Optional[float] = None) -> RecoveryReport:
        """MTTR/availability over the realized timeline.

        ``horizon`` defaults to the simulator's current clock — call
        after :meth:`~repro.sim.engine.Simulator.run` for a full-run
        report.
        """
        if horizon is None:
            horizon = self.world.sim.now
        return recovery_report(
            self.world.metrics.ledger,
            self.windows,
            horizon=horizon,
            n_nodes=len(self.world.network.nodes),
        )
