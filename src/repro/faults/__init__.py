"""Deterministic fault injection: plans, the injector, chaos campaigns.

The robustness claims of the paper (no single point of failure,
self-healing re-routing, Section 1/3/8) are only testable against
*controlled, reproducible* failures.  This package makes faults part of
the experiment definition instead of ad-hoc mutation inside drivers:

:mod:`repro.faults.plan`
    :class:`FaultPlan` — a serializable, ordered tuple of fault events
    (:class:`Crash`, :class:`Recover`, :class:`RegionOutage`,
    :class:`GatewayChurn`, :class:`BatteryDrain`, :class:`LinkDegrade`).
    Plans travel inside sweep params and hash into cache keys, so fault
    campaigns replay bit-identically from ``.repro_cache``.
:mod:`repro.faults.injector`
    :class:`FaultInjector` — compiles a plan onto the simulator event
    queue at world-build time (``WorldBuilder().faults(plan)``) and
    records the realized outage timeline for MTTR/availability
    reporting (:mod:`repro.obs.recovery`).
:mod:`repro.faults.campaign`
    ``run_chaos`` — the registry's ``chaos`` experiment: a randomized,
    seed-determined fault storm under strict conservation auditing.
:mod:`repro.faults.cli`
    ``python -m repro.faults`` — named campaigns (smoke / churn /
    burst) through the sweep runner.
"""

from repro.faults.plan import (
    BatteryDrain,
    Crash,
    FaultPlan,
    GatewayChurn,
    LinkDegrade,
    Recover,
    RegionOutage,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "BatteryDrain",
    "Crash",
    "FaultPlan",
    "GatewayChurn",
    "LinkDegrade",
    "Recover",
    "RegionOutage",
    "FaultInjector",
]
