"""Entry point: ``python -m repro.faults``."""

import sys

from repro.faults.cli import main

if __name__ == "__main__":
    sys.exit(main())
