"""Chaos CLI: ``python -m repro.faults`` — seeded fault campaigns.

Runs one of the named campaigns through the sweep runner (so cells
parallelize, cache and trace exactly like ``python -m repro.runner``)
and prints a per-seed conservation + recovery table.  The chaos
experiment always attaches the packet ledger with strict auditing, so a
conservation violation fails the run loudly — which is the point: this
is the repository's standing proof that randomized crash/recover/burst
storms cannot make a datum vanish.

Examples
--------
The CI smoke campaign, three seeds::

    REPRO_AUDIT=1 python -m repro.faults --campaign smoke --seeds 0..2

Gateway churn with caching and more workers::

    python -m repro.faults --campaign churn --seeds 0..7 --workers 4 \\
        --cache-dir .repro_cache
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.tables import format_table
from repro.exceptions import ReproError
from repro.faults.plan import Crash, FaultPlan, GatewayChurn, LinkDegrade, Recover
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, parse_seeds
from repro.runner.sweep import SweepRunner
from repro.sim.radio import GilbertElliott

__all__ = ["CAMPAIGNS", "build_parser", "main"]


def _churn_plan() -> FaultPlan:
    """One round-robin pass over the gateways, one down at a time."""
    return FaultPlan((GatewayChurn(period=8.0, downtime=4.0, start=6.0, cycles=1),))


def _burst_plan() -> FaultPlan:
    """A long bursty-loss window with two sensor crash/repair pairs inside."""
    ge = GilbertElliott(p_gb=0.2, p_bg=0.35, loss_good=0.05, loss_bad=0.85)
    return FaultPlan(
        (
            LinkDegrade(t0=8.0, t1=20.0, burst=ge),
            Crash(node=0, t=10.0),
            Recover(node=0, t=18.0),
            Crash(node=1, t=12.0),
            Recover(node=1, t=20.0),
        )
    )


#: named campaigns: params handed to the registered ``chaos`` experiment.
#: Plans go in as their jsonable form so campaign cells hash into sweep
#: cache keys exactly like hand-written ``--params`` would.
CAMPAIGNS: dict[str, dict] = {
    # randomized per-seed storm (fault_plan=None -> derived from the seed)
    "smoke": {
        "n_sensors": 40,
        "field_size": 180.0,
        "comm_range": 55.0,
        "rounds": 5,
        "intensity": 0.3,
        "burst": True,
    },
    # deterministic gateway churn: every gateway takes a turn being down
    "churn": {
        "n_sensors": 50,
        "field_size": 200.0,
        "comm_range": 55.0,
        "rounds": 8,
        "fault_plan": _churn_plan().to_param(),
    },
    # heavy Gilbert-Elliott burst window plus mid-storm crashes
    "burst": {
        "n_sensors": 50,
        "field_size": 200.0,
        "comm_range": 55.0,
        "rounds": 6,
        "fault_plan": _burst_plan().to_param(),
    },
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Seeded chaos campaigns with conservation auditing.",
    )
    parser.add_argument(
        "--campaign", "-c", default="smoke", choices=sorted(CAMPAIGNS),
        help="named campaign (default: smoke)",
    )
    parser.add_argument(
        "--seeds", "-s", default="0..2",
        help='seed list: "4", "0,2,5" or inclusive range "0..7" (default 0..2)',
    )
    parser.add_argument(
        "--workers", "-w", type=int, default=None,
        help="worker processes (default: min(cells, cpu count); 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the on-disk result cache at DIR (off by default)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append per-cell JSONL trace records to PATH",
    )
    parser.add_argument(
        "--tables", action="store_true",
        help="also print each seed's full conservation/recovery table",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-cell progress lines",
    )
    return parser


def _fmt_mttr(value) -> str:
    return "-" if value is None else f"{value:.3f}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        seeds = parse_seeds(args.seeds)
    except ReproError as exc:
        parser.error(str(exc))

    spec = ExperimentSpec(
        experiment="chaos", params=dict(CAMPAIGNS[args.campaign]), seeds=seeds
    )

    def progress(done: int, total: int, record: dict) -> None:
        if args.quiet:
            return
        source = "cache" if record["cache_hit"] else f"{record['wall_clock_s']:.2f}s"
        print(
            f"[{done}/{total}] chaos/{args.campaign} seed={record['seed']} ({source})",
            file=sys.stderr,
        )

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = SweepRunner(
        workers=args.workers, cache=cache, trace_path=args.trace, progress=progress
    )
    try:
        sweep = runner.run(spec)
    except ReproError as exc:
        # A ConservationError from any cell lands here: chaos found a
        # leak, the campaign fails.
        print(f"error: {exc}", file=sys.stderr)
        return 1

    rows = []
    for env in sweep.results():
        r = env.result
        rows.append(
            [
                env.seed,
                r.n_fault_events,
                r.generated,
                r.delivered,
                r.dropped,
                r.pending,
                round(r.delivery_ratio, 3),
                r.n_windows,
                _fmt_mttr(r.mttr),
                round(r.availability, 4),
            ]
        )
    print(
        format_table(
            ["seed", "events", "gen", "dlv", "drop", "pend",
             "delivery", "windows", "MTTR_s", "avail"],
            rows,
            title=f"chaos campaign: {args.campaign} ({len(rows)} seeds, all conserved)",
        )
    )
    if args.tables:
        for env in sweep.results():
            print()
            print(env.format_table())
    return 0
