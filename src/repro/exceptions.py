"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class TopologyError(ReproError):
    """Raised when a network topology is invalid for the requested operation.

    Typical causes: a disconnected deployment when connectivity is required,
    a node id that does not exist, or a gateway placed outside the field.
    """


class RoutingError(ReproError):
    """Raised when a routing protocol cannot satisfy a request.

    For example: asking for the installed route of a node that never
    discovered one, or configuring MLR with more gateways than feasible
    places.
    """


class SecurityError(ReproError):
    """Raised when a cryptographic verification fails loudly.

    Protocol code normally *drops* packets that fail verification (that is
    the behaviour the paper specifies); this exception is reserved for API
    misuse, e.g. asking for a pairwise key that was never provisioned.
    """


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration is inconsistent."""


class ConservationError(ReproError):
    """Raised when the packet-conservation invariant is violated.

    Under audit mode (``WorldBuilder().audit()`` / ``REPRO_AUDIT=1``) the
    ledger enforces ``data_generated == unique_delivered + terminal_drops
    + pending`` — a violation means a datum vanished without a recorded
    terminal state, or a delivery was double-counted.
    """
