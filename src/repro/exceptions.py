"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class TopologyError(ReproError):
    """Raised when a network topology is invalid for the requested operation.

    Typical causes: a disconnected deployment when connectivity is required,
    a node id that does not exist, or a gateway placed outside the field.
    """


class RoutingError(ReproError):
    """Raised when a routing protocol cannot satisfy a request.

    For example: asking for the installed route of a node that never
    discovered one, or configuring MLR with more gateways than feasible
    places.
    """


class SecurityError(ReproError):
    """Raised when a cryptographic verification fails loudly.

    Protocol code normally *drops* packets that fail verification (that is
    the behaviour the paper specifies); this exception is reserved for API
    misuse, e.g. asking for a pairwise key that was never provisioned.
    """


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration is inconsistent."""


class ShardWorkerError(SimulationError):
    """A sharded-execution worker process failed.

    Carries enough structure for the coordinator's supervision loop to
    decide what to do next:

    ``shard``
        Which worker failed.
    ``kind``
        ``"remote"`` — the worker raised a Python exception and shipped
        its traceback (``detail``) before exiting; deterministic, never
        retried.  ``"died"`` — the process vanished without a final
        message (SIGKILL, OOM, a closed pipe); ``exitcode`` holds the
        exit status when known.  ``"deadline"`` — the worker stayed
        alive but did not answer within the configured per-window
        timeout.  Deaths and deadline expiries are *retryable*: with
        checkpointing enabled the coordinator respawns the gang from
        the last barrier checkpoint.
    ``phase``
        The protocol step being waited on (``"ready"``, ``"window"``,
        ``"saved"``, ``"done"``).
    """

    def __init__(
        self,
        shard: int,
        kind: str,
        phase: str = "",
        detail: str = "",
        exitcode=None,
    ) -> None:
        self.shard = int(shard)
        self.kind = kind
        self.phase = phase
        self.detail = detail
        self.exitcode = exitcode
        where = f"shard worker {shard}" + (f" (awaiting {phase!r})" if phase else "")
        if kind == "remote":
            msg = f"{where} failed:\n{detail}"
        elif kind == "died":
            msg = f"{where} died" + (
                f" with exit code {exitcode}" if exitcode is not None else ""
            ) + (f": {detail}" if detail else "")
        else:
            msg = f"{where} missed its deadline" + (f": {detail}" if detail else "")
        super().__init__(msg)

    @property
    def retryable(self) -> bool:
        """Whether respawning the gang from a checkpoint can help.

        Remote Python exceptions are deterministic — the respawned gang
        would replay the identical failure — so only process deaths and
        deadline expiries qualify.
        """
        return self.kind in ("died", "deadline")


class CheckpointError(ReproError):
    """Raised when a barrier checkpoint cannot be written, located or
    restored (missing manifest, shard-count mismatch, corrupt column
    checksum, a snapshot attempted mid-``run``)."""


class ConservationError(ReproError):
    """Raised when the packet-conservation invariant is violated.

    Under audit mode (``WorldBuilder().audit()`` / ``REPRO_AUDIT=1``) the
    ledger enforces ``data_generated == unique_delivered + terminal_drops
    + pending`` — a violation means a datum vanished without a recorded
    terminal state, or a delivery was double-counted.
    """
