"""repro — reproduction of the WMSN architecture and routing paper.

Tang, Guo, Li, Wang, Dong: *"Wireless Mesh Sensor Networks in Pervasive
Environment: a Reliable Architecture and Routing Protocol"* (ICPP 2007) /
*"Secure Routing for Wireless Mesh Sensor Networks in Pervasive
Environments"* (IJICS 12(4), 2007).

Public API re-exports the pieces a downstream user composes:

>>> from repro import WorldBuilder, SPR
>>> # see README.md for the full quickstart

Subpackages: :mod:`repro.sim` (substrate), :mod:`repro.core` (protocols),
:mod:`repro.security`, :mod:`repro.mesh`, :mod:`repro.baselines`,
:mod:`repro.analysis`, :mod:`repro.experiments`.
"""

from repro.exceptions import (
    ConfigurationError,
    ReproError,
    RoutingError,
    SecurityError,
    SimulationError,
    TopologyError,
)
from repro.sim import (
    Channel,
    FeasiblePlaces,
    GatewaySchedule,
    IEEE80211,
    IEEE802154,
    MetricsCollector,
    Network,
    Simulator,
    build_sensor_network,
    grid_deployment,
    uniform_deployment,
)
from repro.world import World, WorldBuilder, record_world_events
from repro.core import (
    MLR,
    SPR,
    LifetimeLP,
    LoadBalancedMLR,
    ProtocolConfig,
    SecMLR,
    SleepScheduler,
)
from repro.mesh import ThreeTierWMSN

__version__ = "1.4.0"

# The registry and runner import experiment drivers which import the
# substrate above, and the runner reads ``__version__`` for cache keys,
# so these re-exports must stay below both.
from repro.experiments.registry import (
    REGISTRY,
    ExperimentResult,
    run_experiment,
)
from repro.runner import ExperimentSpec, ResultCache, SweepResult, SweepRunner

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimulationError",
    "TopologyError",
    "RoutingError",
    "SecurityError",
    "ConfigurationError",
    # substrate
    "Simulator",
    "Channel",
    "Network",
    "MetricsCollector",
    "IEEE802154",
    "IEEE80211",
    "build_sensor_network",
    "uniform_deployment",
    "grid_deployment",
    "FeasiblePlaces",
    "GatewaySchedule",
    # composition root
    "World",
    "WorldBuilder",
    "record_world_events",
    # protocols
    "SPR",
    "MLR",
    "SecMLR",
    "LoadBalancedMLR",
    "ProtocolConfig",
    "LifetimeLP",
    "SleepScheduler",
    # architecture
    "ThreeTierWMSN",
    # experiment registry + sweep runner
    "REGISTRY",
    "ExperimentResult",
    "run_experiment",
    "ExperimentSpec",
    "SweepRunner",
    "SweepResult",
    "ResultCache",
]
