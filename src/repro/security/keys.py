"""LEAP-style key predistribution (Section 2.3 / Section 6.2 assumptions).

The paper assumes "each sensor node be pre-distributed secret keys, each
shared with a gateway" — the pairwise keys ``Kij``.  We implement the full
LEAP [32] key hierarchy so experiments can also reason about compromise
blast radius:

* **individual key** — shared between a node and the base station;
* **pairwise keys** — one per (sensor ``i``, gateway ``j``) pair: the
  ``Kij`` of SecMLR;
* **cluster key** — shared by a node with its one-hop neighborhood;
* **group key** — shared network-wide (e.g. for non-sensitive broadcast).

All keys derive deterministically from one master secret held by the
deployment authority (:class:`KeyStore`), so both endpoints of a pair
compute the same key without any exchange — the a-priori distribution the
paper cites from [38].  Capturing a node (:meth:`KeyStore.compromise`)
reveals exactly the keys stored on it and nothing else, which is the LEAP
containment property the attack experiments verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import SecurityError
from repro.security.crypto import derive_key

__all__ = ["NodeKeyRing", "KeyStore"]


@dataclass(frozen=True)
class NodeKeyRing:
    """The key material physically stored on one sensor node.

    This is what an adversary obtains by capturing the node ("attackers
    can capture a sensor and acquire all the information stored within
    it", Section 6.1).
    """

    node_id: int
    individual: bytes
    pairwise: dict[int, bytes]  # gateway id -> Kij
    cluster: bytes
    group: bytes

    def pairwise_with(self, gateway_id: int) -> bytes:
        try:
            return self.pairwise[gateway_id]
        except KeyError:
            raise SecurityError(
                f"node {self.node_id} holds no pairwise key for gateway {gateway_id}"
            ) from None


class KeyStore:
    """Deployment authority: derives and hands out every key in the network.

    Parameters
    ----------
    master:
        The deployment master secret.  Experiments derive it from a seed;
        its entropy is irrelevant to what is being measured.
    gateway_ids:
        Gateways for which every sensor receives a pairwise key.
    """

    def __init__(self, master: bytes, gateway_ids: Iterable[int]) -> None:
        if not master:
            raise SecurityError("master secret must be non-empty")
        self._master = master
        self._gateway_ids = sorted(int(g) for g in gateway_ids)
        self._compromised: set[int] = set()

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    @property
    def gateway_ids(self) -> list[int]:
        return list(self._gateway_ids)

    @property
    def group_key(self) -> bytes:
        return derive_key(self._master, "group")

    def individual_key(self, node_id: int) -> bytes:
        return derive_key(self._master, "individual", node_id)

    def pairwise_key(self, sensor_id: int, gateway_id: int) -> bytes:
        """``Kij`` — symmetric key shared by sensor ``i`` and gateway ``j``."""
        if gateway_id not in self._gateway_ids:
            raise SecurityError(f"{gateway_id} is not a provisioned gateway")
        return derive_key(self._master, "pairwise", sensor_id, gateway_id)

    def cluster_key(self, node_id: int) -> bytes:
        return derive_key(self._master, "cluster", node_id)

    def ring_for(self, node_id: int) -> NodeKeyRing:
        """Provision the full key ring stored on sensor ``node_id``."""
        return NodeKeyRing(
            node_id=node_id,
            individual=self.individual_key(node_id),
            pairwise={g: self.pairwise_key(node_id, g) for g in self._gateway_ids},
            cluster=self.cluster_key(node_id),
            group=self.group_key,
        )

    # ------------------------------------------------------------------
    # compromise model
    # ------------------------------------------------------------------
    def compromise(self, node_id: int) -> NodeKeyRing:
        """Model physical capture of ``node_id``: returns its key ring."""
        self._compromised.add(node_id)
        return self.ring_for(node_id)

    @property
    def compromised_nodes(self) -> set[int]:
        return set(self._compromised)

    def adversary_knows_pairwise(self, sensor_id: int, gateway_id: int) -> bool:
        """Whether captured material includes ``Kij`` for this exact pair.

        LEAP containment: capturing node ``a`` never reveals the pairwise
        key of a *different* sensor ``i`` — so an adversary can only forge
        traffic as the nodes it actually captured.
        """
        return sensor_id in self._compromised and gateway_id in self._gateway_ids
