"""SNEP-style symmetric cryptography (SPINS [31], used by Section 6.2).

The paper writes secured messages as::

    Si -> Gj : {M}<Kij,C>, MAC(Kij, C | {M}<Kij,C>)

i.e. the message is encrypted under the pairwise key ``Kij`` with an
incremental counter ``C`` (counter-mode semantics: same plaintext never
yields the same ciphertext), and authenticated by a MAC that *covers the
counter*, which provides freshness / replay protection without sending a
nonce.

We realise this with standard-library primitives:

* keystream: ``SHA-256(key | counter | block_index)`` blocks XORed over the
  plaintext (a textbook CTR construction);
* MAC: HMAC-SHA256 truncated to :data:`MAC_LENGTH` bytes (SPINS uses 8-byte
  MACs to keep 802.15.4 frames small);
* counters: strictly monotonic per (sender, receiver) direction, verified
  by :class:`CounterState`.

The cipher choice is irrelevant to routing behaviour (see DESIGN.md,
*Substitutions*): what the experiments exercise is that MACs fail on
forgery/alteration and counters fail on replay.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SecurityError

__all__ = [
    "MAC_LENGTH",
    "derive_key",
    "encode_message",
    "decode_message",
    "encrypt",
    "decrypt",
    "compute_mac",
    "verify_mac",
    "CounterState",
]

#: Truncated MAC length in bytes (SPINS: 8 bytes on constrained radios).
MAC_LENGTH = 8

_KEY_LENGTH = 32
_BLOCK = hashlib.sha256().digest_size


def derive_key(master: bytes, *context: Any) -> bytes:
    """Derive a subkey from ``master`` bound to ``context``.

    Uses HMAC-SHA256 as a PRF, the standard extract-and-expand shape; the
    context items (ints, strings) select e.g. the pairwise key of sensor
    ``i`` and gateway ``j``: ``derive_key(master, "pairwise", i, j)``.
    """
    if not master:
        raise SecurityError("master key must be non-empty")
    info = "|".join(str(c) for c in context).encode()
    return hmac.new(master, info, hashlib.sha256).digest()


def encode_message(message: Any) -> bytes:
    """Deterministically serialise a protocol message for crypto operations.

    JSON with sorted keys and tight separators: identical logical messages
    always produce identical bytes, so MACs are stable.  Tuples are
    canonicalised to lists (the protocols re-tuple on decode).
    """
    return json.dumps(message, sort_keys=True, separators=(",", ":"), default=_jsonable).encode()


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot encode {type(obj).__name__} in a protocol message")


def decode_message(blob: bytes) -> Any:
    """Inverse of :func:`encode_message` (lists stay lists)."""
    return json.loads(blob.decode())


def _keystream(key: bytes, counter: int, length: int) -> bytes:
    out = bytearray()
    block_index = 0
    prefix = key + struct.pack(">Q", counter & 0xFFFFFFFFFFFFFFFF)
    while len(out) < length:
        out.extend(hashlib.sha256(prefix + struct.pack(">I", block_index)).digest())
        block_index += 1
    return bytes(out[:length])


def encrypt(key: bytes, counter: int, plaintext: bytes) -> bytes:
    """CTR-mode encryption ``{plaintext}<key, counter>``."""
    if len(key) != _KEY_LENGTH:
        raise SecurityError(f"key must be {_KEY_LENGTH} bytes, got {len(key)}")
    if counter < 0:
        raise SecurityError("counter must be non-negative")
    stream = _keystream(key, counter, len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, stream))


def decrypt(key: bytes, counter: int, ciphertext: bytes) -> bytes:
    """CTR decryption (identical to encryption — XOR keystream)."""
    return encrypt(key, counter, ciphertext)


def compute_mac(key: bytes, counter: int, data: bytes) -> bytes:
    """``MAC(key, C | data)`` — truncated HMAC-SHA256 covering the counter."""
    if len(key) != _KEY_LENGTH:
        raise SecurityError(f"key must be {_KEY_LENGTH} bytes, got {len(key)}")
    body = struct.pack(">Q", counter & 0xFFFFFFFFFFFFFFFF) + data
    return hmac.new(key, body, hashlib.sha256).digest()[:MAC_LENGTH]


def verify_mac(key: bytes, counter: int, data: bytes, tag: bytes) -> bool:
    """Constant-time verification of :func:`compute_mac` output."""
    return hmac.compare_digest(compute_mac(key, counter, data), tag)


@dataclass
class CounterState:
    """Per-direction monotonic counter bookkeeping (SNEP freshness).

    The sender calls :meth:`next`, the receiver :meth:`accept`.  The
    receiver accepts only strictly increasing counters per peer, which
    rejects replays; a bounded forward window rejects absurd jumps (which
    would otherwise let an attacker burn the counter space).
    """

    window: int = 1 << 20
    _next_out: dict[Any, int] = field(default_factory=dict)
    _last_in: dict[Any, int] = field(default_factory=dict)

    def next(self, peer: Any) -> int:
        """Counter value to use for the next message to ``peer``."""
        value = self._next_out.get(peer, 0)
        self._next_out[peer] = value + 1
        return value

    def peek(self, peer: Any) -> int:
        """Next outbound counter without consuming it."""
        return self._next_out.get(peer, 0)

    def accept(self, peer: Any, counter: int, allow_current: bool = False) -> bool:
        """Validate an inbound counter; updates state only when accepted.

        ``allow_current`` additionally accepts a counter *equal* to the
        last accepted one.  Flooded queries reach a gateway as several
        copies of one message (one per neighbor, each a distinct path);
        those duplicates carry the same counter and are legitimate, while
        anything *below* the high-water mark is a replay of an old
        message and is always rejected.
        """
        last = self._last_in.get(peer, -1)
        if counter == last and allow_current:
            return True
        if counter <= last:
            return False  # replayed or reordered stale message
        if counter - last > self.window:
            return False  # implausible jump
        self._last_in[peer] = counter
        return True

    def last_accepted(self, peer: Any) -> int:
        """Highest inbound counter accepted from ``peer`` (-1 if none)."""
        return self._last_in.get(peer, -1)
