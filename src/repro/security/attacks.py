"""Network-layer attacks against WMSN routing (Sections 2.3 and 6).

The paper claims SecMLR "can resist most of attacks against routing in
WMSNs", citing the Karlof–Wagner catalogue [29] via [28]: spoofed /
altered / replayed routing information, selective forwarding, sinkhole,
sybil, wormholes and HELLO floods.  This module implements each as a
*node behaviour* attached to a compromised (or foreign) node; the base
protocol consults the behaviour before normal processing, so the same
attack code runs identically against MLR (vulnerable) and SecMLR
(hardened) — which is what the attack matrix experiment (E8) measures.

Behaviour contract (duck-typed, consulted by
:class:`repro.core.base.DiscoveryProtocol`):

``intercept(node_id, packet, protocol) -> bool``
    Called on every packet delivered to the compromised node.  Returning
    True consumes the packet (normal processing skipped).
``drop_outgoing_data(packet) -> bool``
    Called when the node is about to forward a DATA frame.

All behaviours count what they did in ``stats`` so experiments can report
attacker effort alongside victim impact.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Optional

from repro.sim.packet import Packet, PacketKind

__all__ = [
    "NodeBehavior",
    "SelectiveForwarder",
    "Blackhole",
    "SinkholeAttacker",
    "ReplayAttacker",
    "SpoofAttacker",
    "AlterationAttacker",
    "HelloFloodAttacker",
    "SybilAttacker",
    "WormholeTunnel",
    "WormholeEndpoint",
    "compromise",
]

_fake_data_ids = itertools.count(5_000_000)
_fake_seqs = itertools.count(7_000_000)


class NodeBehavior:
    """Base: a well-behaved node (useful as a no-op control)."""

    def __init__(self) -> None:
        self.stats: Counter = Counter()
        self.node_id: Optional[int] = None
        self.protocol = None

    def attach(self, protocol, node_id: int) -> None:
        self.protocol = protocol
        self.node_id = node_id

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        return False

    def drop_outgoing_data(self, packet: Packet) -> bool:
        return False


def compromise(protocol, node_id: int, behavior: NodeBehavior) -> NodeBehavior:
    """Attach ``behavior`` to ``node_id`` under ``protocol`` and return it."""
    behavior.attach(protocol, node_id)
    protocol.behaviors[node_id] = behavior
    return behavior


class SelectiveForwarder(NodeBehavior):
    """Selective forwarding: forward some packets, drop the rest [29].

    Subtler than a blackhole — the node participates in routing (so routes
    keep flowing through it) but silently discards a fraction of the data.
    """

    def __init__(self, drop_probability: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        if packet.kind is PacketKind.DATA and packet.origin != node_id:
            if protocol.sim.rng.random() < self.drop_probability:
                self.stats["dropped_data"] += 1
                protocol.metrics.on_terminal_drop(
                    "blackhole", packet, node=node_id, now=protocol.sim.now
                )
                return True
        return False


class Blackhole(SelectiveForwarder):
    """Drop every data packet routed through this node."""

    def __init__(self) -> None:
        super().__init__(drop_probability=1.0)


class SinkholeAttacker(NodeBehavior):
    """Sinkhole: answer every routing query with an irresistible fake route.

    The attacker claims a 1-hop link to the queried gateway, so sources
    prefer routes through it — then it swallows the data (sinkhole +
    blackhole).  Against SecMLR the forged response carries no valid MAC
    and dies at the source.
    """

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        if packet.kind is PacketKind.DATA and packet.origin != node_id:
            self.stats["swallowed_data"] += 1
            protocol.metrics.on_terminal_drop(
                "blackhole", packet, node=node_id, now=protocol.sim.now
            )
            return True
        if packet.kind is not PacketKind.RREQ or packet.origin == node_id:
            return False
        targets = packet.payload.get("targets", {})
        if not targets:
            return False
        gateway = sorted(targets)[0]
        key = targets[gateway]
        fake_path = packet.path + (node_id, gateway)
        self.stats["forged_rres"] += 1
        # Hand-craft the response: the attacker has no gateway key, so it
        # cannot use the protocol's decoration hooks — exactly the point.
        pos = len(packet.path)  # index of node_id in fake_path
        forged = Packet(
            kind=PacketKind.RRES,
            origin=node_id,
            target=packet.origin,
            path=fake_path,
            payload={
                "key": key,
                "gw": gateway,
                "pos": pos,
                "seq": packet.payload["seq"],
            },
            payload_bytes=8,
            created_at=protocol.sim.now,
        )
        protocol._forward_rres(node_id, forged, pos)
        return True  # do not re-flood: keep the fake route the fastest


class ReplayAttacker(NodeBehavior):
    """Replayed routing information / data: capture frames, re-inject later.

    SNEP's counters make every replay fail at the gateway; unsecured MLR
    accepts the duplicates as fresh sensor readings.
    """

    def __init__(self, delay: float = 1.0, max_captures: int = 200) -> None:
        super().__init__()
        self.delay = delay
        self.max_captures = max_captures

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        if packet.kind is PacketKind.DATA and packet.origin != node_id:
            if self.stats["captured"] < self.max_captures:
                self.stats["captured"] += 1
                copy = packet.fork()
                protocol.sim.schedule(self.delay, self._replay, protocol, copy)
        return False  # forward normally: a stealthy recorder

    def _replay(self, protocol, packet: Packet) -> None:
        if self.node_id is None or not protocol.network.nodes[self.node_id].alive:
            return
        self.stats["replayed"] += 1
        # Re-process the captured frame as if it had just arrived again:
        # the copy re-forwards along the normal path carrying its ORIGINAL
        # security envelope (same counter) — the textbook replay.
        protocol._on_data(self.node_id, packet.fork())


class SpoofAttacker(NodeBehavior):
    """Spoofed data: inject packets that claim to come from a victim node.

    Without authentication the gateway books the forgeries as real
    readings; SecMLR's MAC check kills them (the attacker does not hold
    the victim's pairwise key).
    """

    def inject(self, victim: int, gateway: int, count: int = 1, spacing: float = 0.05) -> None:
        """Schedule ``count`` forged packets impersonating ``victim``."""
        protocol = self.protocol
        entry = protocol.tables[self.node_id].best(protocol.active_keys(self.node_id))
        for k in range(count):
            protocol.sim.schedule(spacing * (k + 1), self._inject_one, victim, gateway, entry)

    def _inject_one(self, victim: int, gateway: int, entry) -> None:
        protocol = self.protocol
        if not protocol.network.nodes[self.node_id].alive:
            return
        self.stats["forged_data"] += 1
        payload = {
            "data_id": next(_fake_data_ids),
            "bytes": protocol.config.data_payload_bytes,
            "key": entry.key if entry is not None else None,
            "traversed": [victim],
            "forged": True,
        }
        pkt = Packet(
            kind=PacketKind.DATA,
            origin=victim,  # the lie
            target=gateway,
            payload=payload,
            payload_bytes=protocol.config.data_payload_bytes,
            created_at=protocol.sim.now,
        )
        if entry is not None:
            pkt = pkt.fork(path=entry.path)
        # SecMLR packets need RI fields to pass shape checks; fill with
        # what an attacker would put there.
        pkt.payload.setdefault("IS", self.node_id)
        nxt = entry.next_hop if entry is not None else gateway
        pkt.payload.setdefault("IR", nxt)
        protocol.channel.send(self.node_id, pkt.with_hop(self.node_id, nxt))


class AlterationAttacker(NodeBehavior):
    """Altered routing information: rewrite RRES paths flowing through.

    The attacker splices itself into (and shortens) the advertised path.
    MLR installs the corrupt route; SecMLR's path-covering MAC exposes it.
    """

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        if packet.kind is not PacketKind.RRES or packet.target == node_id:
            return False
        pos = packet.payload.get("pos")
        if pos is None or pos == 0:
            return False
        self.stats["altered_rres"] += 1
        origin = packet.path[0]
        gateway = packet.path[-1]
        fake_path = (origin, node_id, gateway)
        forged = packet.fork(path=fake_path)
        forged.payload["pos"] = 1
        protocol._forward_rres(node_id, forged, 1)
        return True


class HelloFloodAttacker(NodeBehavior):
    """HELLO flood: a powerful transmitter forges topology announcements.

    Here the announcement that matters is MLR's NOTIFY; the attacker
    broadcasts a forged "gateway ``gw`` moved to place ``place``" which
    unsecured sensors believe, steering their traffic to a place with no
    gateway.  μTESLA receivers (SecMLR) cannot authenticate the forgery
    and ignore it.
    """

    def flood(self, gateway: int, place: str, repeat: int = 1, spacing: float = 0.1) -> None:
        """Broadcast ``repeat`` forged NOTIFYs."""
        for k in range(repeat):
            self.protocol.sim.schedule(spacing * k, self._flood_once, gateway, place)

    def _flood_once(self, gateway: int, place: str) -> None:
        protocol = self.protocol
        if not protocol.network.nodes[self.node_id].alive:
            return
        self.stats["forged_notify"] += 1
        pkt = Packet(
            kind=PacketKind.NOTIFY,
            origin=gateway,  # the lie: claims to be the gateway
            target=None,
            payload={
                "seq": next(_fake_seqs),
                "gw": gateway,
                "place": place,
                "round": getattr(protocol, "current_round", 0),
            },
            payload_bytes=protocol.config.control_payload_bytes,
            ttl=protocol.config.ttl,
            created_at=protocol.sim.now,
        )
        protocol.channel.send(self.node_id, pkt)


class SybilAttacker(NodeBehavior):
    """Sybil: present multiple fabricated identities in routing exchanges.

    Re-floods RREQs with fabricated node ids spliced into the recorded
    path, so any route discovered through this node contains phantom hops
    that can never forward.
    """

    def __init__(self, identities: int = 3, id_base: int = 900_000) -> None:
        super().__init__()
        self.identities = identities
        self.id_base = id_base
        self._next_fake = itertools.count(id_base)

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        if packet.kind is not PacketKind.RREQ or packet.origin == node_id:
            return False
        flood_key = (packet.origin, packet.payload["seq"])
        if flood_key in protocol._seen_floods[node_id]:
            return True
        protocol._seen_floods[node_id].add(flood_key)
        fakes = tuple(next(self._next_fake) for _ in range(self.identities))
        self.stats["sybil_floods"] += 1
        fwd = packet.fork(
            path=packet.path + (node_id,) + fakes,
            src=node_id,
            dst=None,
            ttl=packet.ttl - 1,
            hop_count=packet.hop_count + 1,
        )
        protocol.channel.send(node_id, fwd)
        return True


class WormholeTunnel:
    """Shared out-of-band link between two colluding endpoints.

    Frames captured at one end re-enter the network at the other with
    negligible delay, making far-apart regions look adjacent.  Combine
    with data swallowing for the classic wormhole + blackhole.
    """

    def __init__(self, latency: float = 1e-4) -> None:
        self.latency = latency
        self.ends: list["WormholeEndpoint"] = []
        self.stats: Counter = Counter()

    def register(self, end: "WormholeEndpoint") -> None:
        if len(self.ends) >= 2:
            raise ValueError("a wormhole has exactly two endpoints")
        self.ends.append(end)

    def other_end(self, end: "WormholeEndpoint") -> Optional["WormholeEndpoint"]:
        for e in self.ends:
            if e is not end:
                return e
        return None


class WormholeEndpoint(NodeBehavior):
    """One mouth of a wormhole."""

    def __init__(self, tunnel: WormholeTunnel, swallow_data: bool = True) -> None:
        super().__init__()
        self.tunnel = tunnel
        self.swallow_data = swallow_data
        tunnel.register(self)

    def intercept(self, node_id: int, packet: Packet, protocol) -> bool:
        other = self.tunnel.other_end(self)
        if other is None or other.node_id is None:
            return False
        if packet.kind is PacketKind.RREQ and packet.origin != node_id:
            flood_key = (packet.origin, packet.payload["seq"])
            if flood_key in protocol._seen_floods[node_id]:
                return True
            protocol._seen_floods[node_id].add(flood_key)
            self.tunnel.stats["tunneled_rreq"] += 1
            fwd = packet.fork(
                path=packet.path + (node_id, other.node_id),
                src=other.node_id,
                dst=None,
                ttl=packet.ttl - 1,
                hop_count=packet.hop_count + 1,
            )
            protocol.sim.schedule(
                self.tunnel.latency, protocol.channel.send, other.node_id, fwd
            )
            return True
        if packet.kind is PacketKind.RRES:
            # Shuttle responses across so the fake adjacency holds up.
            pos = packet.payload.get("pos")
            path = packet.path
            if pos is not None and 0 < pos < len(path) and path[pos] == node_id:
                prev = path[pos - 1]
                if prev == other.node_id:
                    self.tunnel.stats["tunneled_rres"] += 1
                    fwd = packet.fork(src=node_id)
                    fwd.payload["pos"] = pos - 1
                    protocol.sim.schedule(
                        self.tunnel.latency, protocol._on_rres, other.node_id, fwd
                    )
                    return True
            return False
        if packet.kind is PacketKind.DATA and packet.origin != node_id:
            if self.swallow_data:
                self.tunnel.stats["swallowed_data"] += 1
                protocol.metrics.on_terminal_drop(
                    "blackhole", packet, node=node_id, now=protocol.sim.now
                )
                return True
            # Benign wormhole: shuttle the data across the tunnel.
            fwd = packet.fork(src=node_id)
            protocol.sim.schedule(
                self.tunnel.latency, protocol._on_data, other.node_id, fwd
            )
            self.tunnel.stats["tunneled_data"] += 1
            return True
        return False
