"""μTESLA authenticated broadcast (SPINS [31]; used in Section 6.2.3).

MLR gateways that move "broadcast their new places, using TESLA protocol
to achieve authenticated broadcast".  μTESLA makes a broadcast
authenticatable by resource-poor receivers using only symmetric
primitives:

1. The sender builds a one-way hash chain ``K_n -> K_{n-1} -> ... -> K_0``
   (``K_{i-1} = H(K_i)``) and distributes the *commitment* ``K_0``.
2. Time is divided into intervals of length ``interval``.  A message sent
   during interval ``i`` is MACed with ``K_i`` — which is still secret.
3. ``disclosure_lag`` intervals later the sender discloses ``K_i``.
   Receivers (a) check the *security condition* — the message arrived
   before ``K_i`` could have been disclosed, so no adversary could have
   known the key when the message was sent; (b) authenticate the disclosed
   key against the chain (``H^(i-j)(K_i) == K_j`` for the last
   authenticated ``K_j``); and (c) only then verify buffered MACs.

The disclosure lag is the price of broadcast authentication: NOTIFY
messages are actionable only one lag after arrival, which experiment E10
measures as routing-update latency.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import SecurityError
from repro.security.crypto import MAC_LENGTH, encode_message

__all__ = ["TeslaBroadcaster", "TeslaReceiver", "TeslaMessage"]


def _h(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _mac(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()[:MAC_LENGTH]


@dataclass(frozen=True)
class TeslaMessage:
    """An authenticated-broadcast message as it travels on the air."""

    payload: Any
    interval: int
    mac: bytes
    sender: int


class TeslaBroadcaster:
    """Sender side: owns the hash chain and discloses keys on schedule."""

    def __init__(
        self,
        sender_id: int,
        seed: bytes,
        chain_length: int,
        interval: float,
        start_time: float = 0.0,
        disclosure_lag: int = 2,
    ) -> None:
        if chain_length < 2:
            raise SecurityError("chain_length must be at least 2")
        if interval <= 0 or disclosure_lag < 1:
            raise SecurityError("interval must be positive and disclosure_lag >= 1")
        self.sender_id = sender_id
        self.interval = interval
        self.start_time = start_time
        self.disclosure_lag = disclosure_lag
        # chain[i] = K_i, with K_{i-1} = H(K_i); chain[0] is the commitment.
        chain = [b""] * (chain_length + 1)
        chain[chain_length] = _h(seed + b"tesla-root")
        for i in range(chain_length, 0, -1):
            chain[i - 1] = _h(chain[i])
        self._chain = chain
        self.chain_length = chain_length

    # ------------------------------------------------------------------
    @property
    def commitment(self) -> bytes:
        """``K_0`` — distributed to receivers at bootstrap."""
        return self._chain[0]

    def interval_at(self, now: float) -> int:
        """Index of the interval containing time ``now``."""
        if now < self.start_time:
            raise SecurityError("time precedes the TESLA epoch")
        return int((now - self.start_time) / self.interval)

    def key_for_interval(self, i: int) -> bytes:
        if not 1 <= i <= self.chain_length:
            raise SecurityError(f"interval {i} outside chain (1..{self.chain_length})")
        return self._chain[i]

    def authenticate(self, payload: Any, now: float) -> TeslaMessage:
        """MAC ``payload`` with the (still secret) key of the current interval."""
        i = self.interval_at(now)
        if i < 1:
            i = 1  # interval 0 is reserved for the commitment bootstrap
        key = self.key_for_interval(i)
        return TeslaMessage(
            payload=payload,
            interval=i,
            mac=_mac(key, encode_message(payload)),
            sender=self.sender_id,
        )

    def disclosable_key(self, now: float) -> Optional[tuple[int, bytes]]:
        """The newest ``(interval, key)`` safe to disclose at ``now``."""
        i = self.interval_at(now) - self.disclosure_lag
        if i < 1:
            return None
        i = min(i, self.chain_length)
        return i, self.key_for_interval(i)

    def disclosure_time(self, interval: int) -> float:
        """Earliest time the key of ``interval`` may be disclosed."""
        return self.start_time + (interval + self.disclosure_lag) * self.interval


class TeslaReceiver:
    """Receiver side: buffers messages until their interval key is disclosed."""

    def __init__(
        self,
        commitment: bytes,
        interval: float,
        start_time: float = 0.0,
        disclosure_lag: int = 2,
        max_clock_skew: float = 0.0,
    ) -> None:
        self._last_key = commitment
        self._last_interval = 0
        self.interval = interval
        self.start_time = start_time
        self.disclosure_lag = disclosure_lag
        self.max_clock_skew = max_clock_skew
        self._buffer: list[tuple[TeslaMessage, float]] = []

    # ------------------------------------------------------------------
    def security_condition(self, msg: TeslaMessage, arrival_time: float) -> bool:
        """True iff the message arrived before its key could be disclosed."""
        disclosure = self.start_time + (msg.interval + self.disclosure_lag) * self.interval
        return arrival_time + self.max_clock_skew < disclosure

    def receive(self, msg: TeslaMessage, arrival_time: float) -> bool:
        """Buffer an incoming broadcast; returns False if it is unsafe.

        A message failing the security condition is discarded — an
        adversary holding the already-disclosed key could have forged it.
        """
        if not self.security_condition(msg, arrival_time):
            return False
        self._buffer.append((msg, arrival_time))
        return True

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def disclose(self, interval: int, key: bytes) -> list[Any]:
        """Process a disclosed key; returns payloads newly authenticated.

        The key itself is authenticated against the last known chain value
        (``H^(interval - last) (key) == last_key``); a forged key is
        rejected and nothing is released.
        """
        if interval <= self._last_interval:
            return []  # stale disclosure (rebroadcast), already consumed
        # Walk the chain back to the last authenticated key, collecting the
        # intermediate keys: disclosing K_i also authenticates every skipped
        # interval j in (last, i) because K_j = H^(i-j)(K_i).
        keys_by_interval: dict[int, bytes] = {interval: key}
        probe = key
        for j in range(interval - 1, self._last_interval, -1):
            probe = _h(probe)
            keys_by_interval[j] = probe
        anchor = _h(keys_by_interval[self._last_interval + 1])
        if anchor != self._last_key:
            return []  # key does not belong to the chain: forged
        self._last_key = key
        self._last_interval = interval

        released: list[Any] = []
        keep: list[tuple[TeslaMessage, float]] = []
        for msg, arrived in self._buffer:
            k = keys_by_interval.get(msg.interval)
            if k is not None:
                if hmac.compare_digest(_mac(k, encode_message(msg.payload)), msg.mac):
                    released.append(msg.payload)
                # wrong MAC: forged message, silently dropped
            elif msg.interval > interval:
                keep.append((msg, arrived))
            # else: interval older than last authentication point -> dropped
        self._buffer = keep
        return released
