"""Security substrate for SecMLR (Section 6 of the paper).

Implements the building blocks the paper imports from SPINS [31] and
LEAP [32] with real cryptography from the Python standard library:

* :mod:`repro.security.crypto` — SNEP-style authenticated encryption:
  SHA-256 CTR keystream cipher, truncated HMAC-SHA256 MACs, and monotonic
  freshness counters.
* :mod:`repro.security.keys` — LEAP-style key predistribution: individual,
  pairwise (sensor, gateway), cluster and group keys, plus the
  node-capture compromise model.
* :mod:`repro.security.tesla` — μTESLA authenticated broadcast via
  one-way hash chains with delayed key disclosure.
* :mod:`repro.security.attacks` — the network-layer attacks of
  Karlof & Wagner [29] quoted in Section 2.3, as pluggable node behaviours.
"""

from repro.security.crypto import (
    CounterState,
    MAC_LENGTH,
    compute_mac,
    decrypt,
    derive_key,
    encode_message,
    encrypt,
    verify_mac,
)
from repro.security.keys import KeyStore, NodeKeyRing
from repro.security.tesla import TeslaBroadcaster, TeslaReceiver
from repro.security.attacks import (
    AlterationAttacker,
    Blackhole,
    HelloFloodAttacker,
    NodeBehavior,
    ReplayAttacker,
    SelectiveForwarder,
    SinkholeAttacker,
    SpoofAttacker,
    SybilAttacker,
    WormholeEndpoint,
    WormholeTunnel,
    compromise,
)

__all__ = [
    "MAC_LENGTH",
    "CounterState",
    "compute_mac",
    "decrypt",
    "derive_key",
    "encode_message",
    "encrypt",
    "verify_mac",
    "KeyStore",
    "NodeKeyRing",
    "TeslaBroadcaster",
    "TeslaReceiver",
    "NodeBehavior",
    "SelectiveForwarder",
    "Blackhole",
    "SinkholeAttacker",
    "ReplayAttacker",
    "SpoofAttacker",
    "AlterationAttacker",
    "HelloFloodAttacker",
    "SybilAttacker",
    "WormholeTunnel",
    "WormholeEndpoint",
    "compromise",
]
